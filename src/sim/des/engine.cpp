#include "sim/des/engine.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace teamnet::sim::des {

namespace {

// std heap algorithms build a max-heap; invert the key order for a min-heap.
bool later(const Event& a, const Event& b) { return b.key < a.key; }

}  // namespace

void EventQueue::push(Event event) {
  heap_.push_back(std::move(event));
  std::push_heap(heap_.begin(), heap_.end(), later);
}

const Event& EventQueue::top() const {
  TEAMNET_CHECK_MSG(!heap_.empty(), "EventQueue::top on empty queue");
  return heap_.front();
}

Event EventQueue::pop() {
  TEAMNET_CHECK_MSG(!heap_.empty(), "EventQueue::pop on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Event event = std::move(heap_.back());
  heap_.pop_back();
  return event;
}

Engine::Engine(int num_nodes, std::unique_ptr<GrantPolicy> policy)
    : num_nodes_(num_nodes),
      policy_(policy != nullptr
                  ? std::move(policy)
                  : make_grant_policy(GrantPolicyKind::canonical, 0,
                                      num_nodes)) {
  TEAMNET_CHECK_MSG(num_nodes > 0, "Engine needs at least one node");
  nodes_.resize(static_cast<std::size_t>(num_nodes));
  eligible_.reserve(static_cast<std::size_t>(num_nodes));
}

void Engine::check_node(int node) const {
  TEAMNET_CHECK_MSG(node >= 0 && node < num_nodes_, "node id out of range");
}

double Engine::node_time(int node) const {
  check_node(node);
  MutexLock lock(mutex_);
  return nodes_[static_cast<std::size_t>(node)].time;
}

double Engine::max_time() const {
  MutexLock lock(mutex_);
  double t = 0.0;
  for (const NodeSlot& slot : nodes_) t = std::max(t, slot.time);
  return t;
}

std::int64_t Engine::bytes_delivered() const {
  MutexLock lock(mutex_);
  return bytes_;
}

std::int64_t Engine::messages_delivered() const {
  MutexLock lock(mutex_);
  return messages_;
}

void Engine::throw_if_deadlocked_locked() const {
  if (deadlocked_) throw DeadlockError(deadlock_msg_);
}

double Engine::min_running_time_locked() const {
  double t = std::numeric_limits<double>::infinity();
  for (const NodeSlot& slot : nodes_) {
    if (slot.state == NodeState::kRunning) t = std::min(t, slot.time);
  }
  return t;
}

double Engine::wake_time_locked(const NodeSlot& slot) const {
  if (slot.state != NodeState::kBlocked) {
    return std::numeric_limits<double>::infinity();
  }
  const Mailbox& mb = *slot.waiting;
  if (!mb.queue_.empty()) {
    return std::max(slot.time, mb.queue_.front().arrival);
  }
  if ((mb.closed_ && mb.pending_events_ == 0) || slot.timed_out) {
    return slot.time;
  }
  return std::numeric_limits<double>::infinity();
}

bool Engine::granted_locked(int node) const {
  const NodeSlot& self = nodes_[static_cast<std::size_t>(node)];
  if (self.state != NodeState::kRunning) return false;
  // Conservative floor: a node may only act while it is within the policy's
  // eligibility window of the minimum key, where a running node's key is
  // its clock and a blocked node's key is its determined wake time. A
  // blocked node whose wakeup is already determined (delivery queued,
  // channel drained-and-closed, timeout fired) WILL resume at a known
  // virtual time; until its thread actually wakes it keeps depressing the
  // grant floor, or the window between event-fire and thread-wake would let
  // later-clocked nodes slip sends in front of it non-deterministically —
  // exactly the thread-timing leak this engine exists to remove.
  //
  // The window (policy slack, 0 under canonical) widens "simultaneously
  // eligible" to every node within `t_min + slack`: reordering those nodes'
  // timed ops perturbs only virtual times via the shared-medium cursor
  // (bounded arbitration jitter); per-mailbox delivery content remains
  // pump-fire-order deterministic either way.
  double t_min = self.time;
  for (int m = 0; m < num_nodes_; ++m) {
    const NodeSlot& other = nodes_[static_cast<std::size_t>(m)];
    const double t = other.state == NodeState::kRunning
                         ? other.time
                         : wake_time_locked(other);
    if (t < t_min) t_min = t;
  }
  const double window = t_min + policy_->slack();
  if (self.time > window) return false;
  // Events win ties against running nodes: a delivery due at or before a
  // node's own clock must land before that node takes another timed step,
  // or the trace would depend on which thread got scheduled first. The
  // floor node always passes this gate (post-pump events strictly exceed
  // the min running clock), so the eligible set is never empty and a gated
  // ahead-of-floor node cannot livelock the grant.
  const double gate = events_.empty()
                          ? std::numeric_limits<double>::infinity()
                          : events_.top().key.time;
  if (self.time >= gate) return false;
  eligible_.clear();
  for (int m = 0; m < num_nodes_; ++m) {
    const NodeSlot& other = nodes_[static_cast<std::size_t>(m)];
    const double t = other.state == NodeState::kRunning
                         ? other.time
                         : wake_time_locked(other);
    if (t <= window && t < gate) eligible_.push_back(m);
  }
  // Which of the simultaneously eligible nodes acts first is pure schedule
  // choice — delegate it to the policy. The salt mixes in state that only
  // granted sends mutate, so repeated ties at the same virtual time can
  // still land on different winners without breaking the purity contract.
  const std::uint64_t salt = mix64(next_seq_ ^ double_bits(medium_free_));
  return policy_->choose(t_min, eligible_, salt) == node;
}

void Engine::record_locked(std::uint64_t tag, int node, double time,
                           std::uint64_t extra) {
  std::uint64_t h = mix64(tag ^ mix64(static_cast<std::uint64_t>(node) ^
                                      mix64(double_bits(time) ^ extra)));
  digest_ += h;  // commutative on purpose — see schedule_digest()
}

std::uint64_t Engine::schedule_digest() const {
  MutexLock lock(mutex_);
  return digest_;
}

int Engine::unretired_nodes() const {
  MutexLock lock(mutex_);
  int n = 0;
  for (const NodeSlot& slot : nodes_) {
    if (slot.state != NodeState::kRetired) ++n;
  }
  return n;
}

void Engine::pump_locked() {
  const double horizon = min_running_time_locked();
  bool fired = false;
  while (!events_.empty() && events_.top().key.time <= horizon) {
    Event event = events_.pop();
    Mailbox& mb = *event.mailbox;
    --mb.pending_events_;
    mb.queue_.push_back({event.key.time, std::move(event.bytes), event.sent});
    fired = true;
  }
  // Firing never changes a running node's clock, so `horizon` stays valid
  // across the loop.
  if (fired) cv_.notify_all();
}

void Engine::check_quiescence_locked() {
  for (const NodeSlot& slot : nodes_) {
    if (slot.state == NodeState::kRunning) return;
  }
  if (!events_.empty()) return;  // pump will fire these once horizon allows

  // No node is running and nothing is in flight. Classify the blocked set:
  // a waiter whose predicate already holds (message queued, channel drained
  // and closed, or a timeout already fired for it) just needs the CPU — the
  // engine is not stuck.
  bool any_blocked = false;
  int fire = -1;
  double fire_deadline = std::numeric_limits<double>::infinity();
  for (int n = 0; n < num_nodes_; ++n) {
    const NodeSlot& slot = nodes_[static_cast<std::size_t>(n)];
    if (slot.state != NodeState::kBlocked) continue;
    any_blocked = true;
    const Mailbox& mb = *slot.waiting;
    const bool wakeable = !mb.queue_.empty() ||
                          (mb.closed_ && mb.pending_events_ == 0) ||
                          slot.timed_out;
    if (wakeable) {
      cv_.notify_all();
      return;
    }
    if (slot.has_timeout) {
      const double deadline = slot.time + slot.timeout_budget;
      if (deadline < fire_deadline) {
        fire_deadline = deadline;
        fire = n;
      }
    }
  }
  if (!any_blocked) return;  // everyone retired — normal termination

  if (fire >= 0) {
    // Quiescence proves no message can still arrive for this wait; fire the
    // earliest deadline (ties broken by node id via strict `<` above).
    nodes_[static_cast<std::size_t>(fire)].timed_out = true;
    cv_.notify_all();
    return;
  }

  std::ostringstream msg;
  msg << "discrete-event deadlock: no node running, no event pending, and "
         "no timeout armed; blocked:";
  for (int n = 0; n < num_nodes_; ++n) {
    const NodeSlot& slot = nodes_[static_cast<std::size_t>(n)];
    if (slot.state != NodeState::kBlocked) continue;
    msg << " node " << n << " (t=" << slot.time << ", recv from mailbox of node "
        << slot.waiting->owner() << ");";
  }
  deadlocked_ = true;
  deadlock_msg_ = msg.str();
  if (obs::Tracer::active() && obs::Tracer::scheduler_events()) {
    for (int n = 0; n < num_nodes_; ++n) {
      const NodeSlot& slot = nodes_[static_cast<std::size_t>(n)];
      if (slot.state != NodeState::kBlocked) continue;
      obs::Tracer::instance().instant_at(n, slot.time, "des.deadlock",
                                         obs::TraceArgs());
    }
  }
  cv_.notify_all();
}

void Engine::await_grant_locked(int node) {
  for (;;) {
    throw_if_deadlocked_locked();
    pump_locked();
    if (granted_locked(node)) return;
    cv_.wait(mutex_);
  }
}

std::string Engine::pop_locked(int node, Mailbox& mb) {
  TEAMNET_CHECK_MSG(!mb.queue_.empty(), "pop_locked on empty mailbox");
  NodeSlot& slot = nodes_[static_cast<std::size_t>(node)];
  Mailbox::Delivery delivery = std::move(mb.queue_.front());
  mb.queue_.pop_front();
  slot.time = std::max(slot.time, delivery.arrival);
  bytes_ += static_cast<std::int64_t>(delivery.bytes.size());
  ++messages_;
  // Realized transit on the receiver's clock, Lamport wait included — the
  // same definition SimChannel::unstamp reports, and the same edges, so
  // both schedulers feed one "net.transit_ms". The handle is cached after
  // the first lookup; observe() is lock-free atomics, safe under mutex_
  // (the registry mutex is a leaf, same nesting the tracer uses here).
  static obs::Histogram& transit_ms =
      obs::MetricsRegistry::instance().histogram(
          "net.transit_ms", {0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1e3});
  transit_ms.observe(1e3 * (slot.time - delivery.sent));
  record_locked('P', node, delivery.arrival, delivery.bytes.size());
  // The receiver's clock may have jumped forward, raising the pump horizon.
  pump_locked();
  cv_.notify_all();
  return std::move(delivery.bytes);
}

double Engine::advance(int node, double seconds) {
  check_node(node);
  TEAMNET_CHECK_MSG(seconds >= 0.0, "advance by negative time");
  MutexLock lock(mutex_);
  await_grant_locked(node);
  NodeSlot& slot = nodes_[static_cast<std::size_t>(node)];
  slot.time += seconds;
  record_locked('A', node, slot.time, 0);
  policy_->note_step(node);
  pump_locked();
  cv_.notify_all();
  return slot.time;
}

void Engine::retire(int node) {
  check_node(node);
  MutexLock lock(mutex_);
  NodeSlot& slot = nodes_[static_cast<std::size_t>(node)];
  slot.state = NodeState::kRetired;
  slot.waiting = nullptr;
  slot.has_timeout = false;
  record_locked('R', node, slot.time, 0);
  if (obs::Tracer::active() && obs::Tracer::scheduler_events()) {
    obs::Tracer::instance().instant_at(node, slot.time, "des.retire",
                                       obs::TraceArgs());
  }
  pump_locked();
  check_quiescence_locked();
  cv_.notify_all();
}

std::shared_ptr<Mailbox> Engine::make_mailbox(int owner) {
  check_node(owner);
  return std::make_shared<Mailbox>(owner);
}

void Engine::send(int from, const std::shared_ptr<Mailbox>& to,
                  std::string bytes, const net::LinkProfile& link) {
  check_node(from);
  TEAMNET_CHECK_MSG(to != nullptr, "send to null mailbox");
  MutexLock lock(mutex_);
  // Closed means closed regardless of virtual order — check before the
  // grant so a sender whose peer tore the channel down fails fast instead
  // of queueing behind nodes that will never advance.
  if (to->closed_) throw NetworkError("channel closed");
  await_grant_locked(from);
  if (to->closed_) throw NetworkError("channel closed");
  // Exactly VirtualClock::deliver: the transmission occupies the shared
  // half-duplex medium from max(send_time, medium_free) for its airtime,
  // and arrives one propagation latency after it leaves the medium. The
  // sender's clock does not advance (SimChannel behaves the same way).
  const double send_time = nodes_[static_cast<std::size_t>(from)].time;
  const double airtime =
      link.transfer_time(static_cast<std::int64_t>(bytes.size())) -
      link.latency_s;
  const double start = std::max(send_time, medium_free_);
  medium_free_ = start + airtime;
  const double arrival = start + airtime + link.latency_s;
  // Causality invariant the explorer leans on: no delivery may ever be
  // scheduled before its send left the sender's clock.
  TEAMNET_CHECK_MSG(arrival >= send_time,
                    "delivery scheduled before its send: arrival="
                        << arrival << " send_time=" << send_time);
  to->pending_events_ += 1;
  record_locked('S', from, arrival,
                mix64(static_cast<std::uint64_t>(to->owner()) ^
                      static_cast<std::uint64_t>(bytes.size())));
  policy_->note_step(from);
  if (obs::Tracer::active() && obs::Tracer::scheduler_events()) {
    // Under `mutex_` — must use the explicit-timestamp API; a bound
    // TimeSource would call node_time() and self-deadlock on `mutex_`.
    obs::Tracer::instance().instant_at(
        from, send_time, "des.schedule",
        obs::TraceArgs()
            .arg("dest", to->owner())
            .arg("arrival", arrival)
            .arg("bytes", static_cast<std::int64_t>(bytes.size())));
  }
  events_.push(Event{EventKey{arrival, to->owner(), next_seq_++}, to,
                     std::move(bytes), send_time});
  pump_locked();
  cv_.notify_all();
}

std::string Engine::recv(int node, Mailbox& mb) {
  check_node(node);
  MutexLock lock(mutex_);
  NodeSlot& slot = nodes_[static_cast<std::size_t>(node)];
  for (;;) {
    throw_if_deadlocked_locked();
    if (!mb.queue_.empty()) return pop_locked(node, mb);
    if (mb.closed_ && mb.pending_events_ == 0) {
      throw NetworkError("channel closed");
    }
    // Only mark Blocked once the not-ready predicate holds above — blocking
    // with a deliverable message queued would let check_quiescence mistake
    // a runnable system for a stuck one.
    slot.state = NodeState::kBlocked;
    slot.waiting = &mb;
    pump_locked();
    check_quiescence_locked();
    // pump/quiescence above may have satisfied this very wait (fired an
    // event into `mb`, or declared deadlock); their notify happened before
    // we could sleep, so re-check instead of waiting on a lost wakeup.
    if (mb.queue_.empty() && !(mb.closed_ && mb.pending_events_ == 0) &&
        !deadlocked_) {
      cv_.notify_all();  // blocking lowers the grant floor for other nodes
      cv_.wait(mutex_);
    }
    slot.state = NodeState::kRunning;
    slot.waiting = nullptr;
  }
}

std::optional<std::string> Engine::recv_timeout(int node, Mailbox& mb,
                                                double seconds) {
  check_node(node);
  const double budget = seconds > 0.0 ? seconds : 0.0;
  MutexLock lock(mutex_);
  NodeSlot& slot = nodes_[static_cast<std::size_t>(node)];
  slot.timed_out = false;
  for (;;) {
    throw_if_deadlocked_locked();
    if (!mb.queue_.empty()) return pop_locked(node, mb);
    if (mb.closed_ && mb.pending_events_ == 0) {
      throw NetworkError("channel closed");
    }
    if (slot.timed_out) {
      // check_quiescence fired this wait: provably nothing could arrive
      // within the budget, so charge it in full (SimChannel charges the
      // same way) and report the timeout.
      slot.timed_out = false;
      if (budget > 0.0) {
        slot.time += budget;
        pump_locked();
      }
      record_locked('T', node, slot.time, 0);
      if (obs::Tracer::active() && obs::Tracer::scheduler_events()) {
        obs::Tracer::instance().instant_at(
            node, slot.time, "des.timeout_fired",
            obs::TraceArgs().arg("budget_s", budget));
      }
      cv_.notify_all();
      return std::nullopt;
    }
    slot.state = NodeState::kBlocked;
    slot.waiting = &mb;
    slot.has_timeout = true;
    slot.timeout_budget = budget;
    pump_locked();
    check_quiescence_locked();
    // Same lost-wakeup guard as recv, plus: quiescence may have fired this
    // node's own timeout just now.
    if (mb.queue_.empty() && !(mb.closed_ && mb.pending_events_ == 0) &&
        !slot.timed_out && !deadlocked_) {
      cv_.notify_all();
      cv_.wait(mutex_);
    }
    slot.state = NodeState::kRunning;
    slot.waiting = nullptr;
    slot.has_timeout = false;
  }
}

void Engine::close(Mailbox& mb) {
  MutexLock lock(mutex_);
  mb.closed_ = true;
  // Blocked readers re-check and throw once the queue and pending events
  // drain; nothing else changes, so no quiescence pass is needed here.
  cv_.notify_all();
}

}  // namespace teamnet::sim::des
