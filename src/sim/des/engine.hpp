// Conservative discrete-event engine for the edge simulation (DESIGN.md §9).
//
// The engine runs the UNCHANGED distributed protocol code — the same
// CollaborativeMaster/Worker, mpi::Communicator and MoE serving loops that
// run over real TCP — on real threads, but serializes every virtual-time
// mutation so the whole run replays in virtual-time order:
//
//   * Each node's thread must hold the GRANT (be the lexicographic minimum
//     (virtual_time, node_id) among running nodes, with no deliverable
//     event at or before its clock) to advance its clock or transmit.
//   * A send arbitrates the shared half-duplex medium with exactly
//     VirtualClock's math and enqueues a delivery event keyed by
//     (arrival_time, destination_node, schedule_seq) — the global
//     tie-break rule that makes event order total and deterministic.
//   * An event fires (message moves into its destination mailbox) only
//     once no running node could still schedule an earlier one — the
//     conservative PDES invariant: nothing is ever delivered "early".
//   * A node blocked in recv joins the blocked registry; when no node is
//     running and no event is pending, the engine has reached QUIESCENCE:
//     the earliest pending recv_timeout fires (charging its budget to the
//     waiter's clock), and if no node holds a timeout the engine declares
//     a deadlock with a diagnosable DeadlockError instead of hanging.
//
// The result: two same-seed runs produce bit-identical virtual traces —
// ScenarioResult::latency_ms included — while tensor compute still
// overlaps in real time (only engine calls are serialized, not the math
// between them).
//
// Virtual timeouts deserve a note. In free-running mode a recv_timeout
// waits REAL seconds, so a message actually in flight always beats the
// deadline (real waits are microseconds); a timeout only ever fires for a
// message that never comes. The engine reproduces that contract in virtual
// time: a pending delivery is always handed over before a timeout is
// considered, and a timeout fires only at quiescence — when provably no
// message can still arrive. This is what keeps discrete outcomes
// (selection, fault handling, traffic counts) identical across the two
// scheduler modes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "common/error.hpp"
#include "net/virtual_clock.hpp"
#include "sim/des/grant_policy.hpp"

namespace teamnet::sim::des {

/// The simulated system can never make progress: at least one node is
/// blocked in a plain recv while no node is running, no delivery is
/// pending, and no timeout could fire. The message names the stuck nodes.
class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

/// Global event order: arrival time, then destination node, then schedule
/// sequence number. The seq makes ties total (and FIFO per mailbox).
struct EventKey {
  double time = 0.0;
  int node = 0;            ///< destination node id
  std::uint64_t seq = 0;   ///< global schedule order

  friend bool operator<(const EventKey& a, const EventKey& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.node != b.node) return a.node < b.node;
    return a.seq < b.seq;
  }
};

class Mailbox;

/// One pending delivery. `mailbox` may be null in event-queue unit tests.
struct Event {
  EventKey key;
  std::shared_ptr<Mailbox> mailbox;
  std::string bytes;
  double sent = 0.0;  ///< sender's clock when the message left
};

/// Min-heap of events keyed by EventKey. Exposed (rather than buried in
/// Engine) so tests can pin the tie-break rule down in isolation.
class EventQueue {
 public:
  void push(Event event);
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  const Event& top() const;
  Event pop();

 private:
  std::vector<Event> heap_;
};

/// One direction of a DES channel: the destination-side message queue for
/// a single (sender, receiver) pair. All mutable state is engine state,
/// guarded by the owning Engine's mutex (a Mailbox never outlives its
/// engine's run and is only touched through Engine methods).
class Mailbox {
 public:
  explicit Mailbox(int owner) : owner_(owner) {}
  int owner() const { return owner_; }

 private:
  friend class Engine;
  struct Delivery {
    double arrival = 0.0;
    std::string bytes;
    double sent = 0.0;  ///< sender's clock when the message left
  };

  const int owner_;
  std::deque<Delivery> queue_;     ///< fired, not yet popped
  std::int64_t pending_events_ = 0;  ///< scheduled, not yet fired
  bool closed_ = false;
};

class Engine {
 public:
  /// A null `policy` means the canonical lexicographic-min rule. The policy
  /// only breaks ties among simultaneously eligible nodes — the
  /// conservative floor (nobody acts ahead of the minimum key) and the
  /// event-vs-node ordering are not policy choices (DESIGN.md §11).
  explicit Engine(int num_nodes, std::unique_ptr<GrantPolicy> policy = nullptr);

  int num_nodes() const { return num_nodes_; }

  /// Order-insensitive fingerprint of everything schedule-visible that
  /// happened so far: granted advances/sends, deliveries, timeout charges
  /// and retirements, each hashed with its virtual timestamp and summed.
  /// Two runs of the same scenario under the same (seed, policy,
  /// schedule_seed) must report identical digests — the bit-exactness
  /// check behind counterexample replay. The sum (not a running chain)
  /// is deliberate: receive-side pops race granted operations in REAL
  /// mutex-acquisition order even though their virtual content is
  /// deterministic, so only a commutative combine is reproducible.
  std::uint64_t schedule_digest() const;

  /// Nodes not yet retired — 0 after a clean run (every worker and the
  /// master retired); the explorer checks this as a protocol invariant.
  int unretired_nodes() const;

  // -- clock surface (mirrors net::VirtualClock) ----------------------------
  double node_time(int node) const;
  double max_time() const;
  /// Advances `node` by `seconds` of local work, in virtual-time order:
  /// blocks until `node` holds the grant. Returns the new time.
  double advance(int node, double seconds);
  std::int64_t bytes_delivered() const;
  std::int64_t messages_delivered() const;

  // -- node lifecycle -------------------------------------------------------
  /// Marks `node` permanently done with virtual time. A node whose thread
  /// stops making engine calls while still registered as running would
  /// hold the virtual-time floor forever and stall every pending delivery;
  /// drivers therefore retire a node when its protocol role ends (workers
  /// on serve-loop exit, the master after shutdown and before join).
  /// Idempotent; a retired node must make no further timed calls.
  void retire(int node);

  // -- channel surface (used by DesChannel) ---------------------------------
  std::shared_ptr<Mailbox> make_mailbox(int owner);
  /// Transmits `bytes` from `from` into `to` under the grant: arbitrates
  /// the shared medium at the sender's current clock (the sender's clock
  /// does not advance — matching SimChannel) and schedules the delivery.
  void send(int from, const std::shared_ptr<Mailbox>& to, std::string bytes,
            const net::LinkProfile& link);
  /// Blocks until a message is available in `mb`, then pops it, advancing
  /// `node`'s clock to max(now, arrival) and counting the traffic. Throws
  /// NetworkError once `mb` is closed and fully drained, DeadlockError on
  /// global quiescence with no way forward.
  std::string recv(int node, Mailbox& mb);
  /// recv with a virtual budget: returns nullopt (charging the budget to
  /// `node`'s clock when positive) if the engine reaches quiescence before
  /// a message arrives. Never times out a delivery already in flight.
  std::optional<std::string> recv_timeout(int node, Mailbox& mb,
                                          double seconds);
  /// Closes `mb`: already-scheduled deliveries still fire and drain, then
  /// readers get NetworkError; new sends fail immediately.
  void close(Mailbox& mb);

 private:
  enum class NodeState { kRunning, kBlocked, kRetired };

  struct NodeSlot {
    double time = 0.0;
    NodeState state = NodeState::kRunning;
    const Mailbox* waiting = nullptr;  ///< mailbox blocked on, when kBlocked
    bool has_timeout = false;          ///< blocked wait carries a budget
    double timeout_budget = 0.0;
    bool timed_out = false;  ///< quiescence fired this node's timeout
  };

  void check_node(int node) const;
  void throw_if_deadlocked_locked() const TN_REQUIRES(mutex_);
  double min_running_time_locked() const TN_REQUIRES(mutex_);
  /// Virtual time at which a blocked node is certain to resume (delivery
  /// already in its mailbox, channel closed and drained, or timeout fired);
  /// +inf for nodes that are running, retired, or still genuinely waiting.
  double wake_time_locked(const NodeSlot& slot) const TN_REQUIRES(mutex_);
  bool granted_locked(int node) const TN_REQUIRES(mutex_);
  /// Mixes one schedule-visible record into the digest (commutative sum —
  /// see schedule_digest()).
  void record_locked(std::uint64_t tag, int node, double time,
                     std::uint64_t extra) TN_REQUIRES(mutex_);
  /// Fires every event due at or before the minimum running clock.
  void pump_locked() TN_REQUIRES(mutex_);
  /// At quiescence, fires the earliest pending timeout or declares
  /// deadlock. No-op while any node runs or any wait can self-resolve.
  void check_quiescence_locked() TN_REQUIRES(mutex_);
  void await_grant_locked(int node) TN_REQUIRES(mutex_);
  /// Pops the front delivery of `mb` for `node` (queue must be nonempty).
  std::string pop_locked(int node, Mailbox& mb) TN_REQUIRES(mutex_);

  const int num_nodes_;
  /// Tie-break rule; never null. State only mutates via note_step under
  /// mutex_ on granted operations (see GrantPolicy's purity contract).
  const std::unique_ptr<GrantPolicy> policy_;
  mutable Mutex mutex_;
  CondVar cv_;
  /// Scratch for granted_locked's eligible set (avoids an allocation per
  /// grant check; only touched under mutex_).
  mutable std::vector<int> eligible_ TN_GUARDED_BY(mutex_);
  std::vector<NodeSlot> nodes_ TN_GUARDED_BY(mutex_);
  EventQueue events_ TN_GUARDED_BY(mutex_);
  double medium_free_ TN_GUARDED_BY(mutex_) = 0.0;
  std::uint64_t next_seq_ TN_GUARDED_BY(mutex_) = 0;
  std::int64_t bytes_ TN_GUARDED_BY(mutex_) = 0;
  std::int64_t messages_ TN_GUARDED_BY(mutex_) = 0;
  std::uint64_t digest_ TN_GUARDED_BY(mutex_) = 0;
  bool deadlocked_ TN_GUARDED_BY(mutex_) = false;
  std::string deadlock_msg_ TN_GUARDED_BY(mutex_);
};

}  // namespace teamnet::sim::des
