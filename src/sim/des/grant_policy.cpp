#include "sim/des/grant_policy.hpp"

#include <cstring>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace teamnet::sim::des {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

namespace {

class CanonicalPolicy final : public GrantPolicy {
 public:
  int choose(double /*time*/, const std::vector<int>& eligible,
             std::uint64_t /*salt*/) const override {
    return eligible.front();
  }
};

class RandomTiebreakPolicy final : public GrantPolicy {
 public:
  RandomTiebreakPolicy(std::uint64_t seed, double slack_s)
      : seed_(seed), slack_(slack_s) {}

  int choose(double time, const std::vector<int>& eligible,
             std::uint64_t salt) const override {
    // Stateless hash — NOT an RNG draw — so re-evaluation at arbitrary
    // real times always lands on the same winner (see header contract).
    std::uint64_t h = mix64(seed_ ^ double_bits(time));
    h = mix64(h ^ salt);
    for (int n : eligible) h = mix64(h ^ static_cast<std::uint64_t>(n));
    const auto index = static_cast<std::size_t>(h % eligible.size());
    return eligible[index];
  }

  double slack() const override { return slack_; }

 private:
  const std::uint64_t seed_;
  const double slack_;
};

class PctPolicy final : public GrantPolicy {
 public:
  PctPolicy(std::uint64_t seed, int num_nodes, double slack_s)
      : seed_(seed), slack_(slack_s) {
    Rng rng(mix64(seed ^ 0x9c75'0000'0000'0001ULL));
    // Higher value = higher priority; a seeded permutation so every
    // schedule seed starts from a different priority order.
    priority_ = rng.permutation(num_nodes);
  }

  int choose(double /*time*/, const std::vector<int>& eligible,
             std::uint64_t /*salt*/) const override {
    int best = eligible.front();
    for (int n : eligible) {
      if (priority_[static_cast<std::size_t>(n)] >
          priority_[static_cast<std::size_t>(best)]) {
        best = n;
      }
    }
    return best;
  }

  void note_step(int node) override {
    ++steps_;
    // Seeded priority-change points: at ~1/kChangePeriod of granted steps
    // the stepping node drops below everyone, forcing the kind of deep
    // preemption PCT uses to hit depth-d ordering bugs.
    if (mix64(seed_ ^ steps_) % kChangePeriod == 0) {
      int lowest = priority_[static_cast<std::size_t>(node)];
      for (int p : priority_) lowest = std::min(lowest, p);
      priority_[static_cast<std::size_t>(node)] = lowest - 1;
    }
  }

  double slack() const override { return slack_; }

 private:
  static constexpr std::uint64_t kChangePeriod = 11;

  const std::uint64_t seed_;
  const double slack_;
  std::uint64_t steps_ = 0;
  std::vector<int> priority_;
};

}  // namespace

const char* to_string(GrantPolicyKind kind) {
  switch (kind) {
    case GrantPolicyKind::canonical:
      return "canonical";
    case GrantPolicyKind::random_tiebreak:
      return "random-tiebreak";
    case GrantPolicyKind::pct:
      return "pct";
  }
  return "unknown";
}

std::optional<GrantPolicyKind> parse_grant_policy(std::string_view name) {
  if (name == "canonical") return GrantPolicyKind::canonical;
  if (name == "random-tiebreak") return GrantPolicyKind::random_tiebreak;
  if (name == "pct") return GrantPolicyKind::pct;
  return std::nullopt;
}

std::unique_ptr<GrantPolicy> make_grant_policy(GrantPolicyKind kind,
                                               std::uint64_t schedule_seed,
                                               int num_nodes, double slack_s) {
  TEAMNET_CHECK_MSG(num_nodes > 0, "num_nodes=" << num_nodes);
  TEAMNET_CHECK_MSG(slack_s >= 0.0, "negative schedule slack");
  switch (kind) {
    case GrantPolicyKind::canonical:
      return std::make_unique<CanonicalPolicy>();
    case GrantPolicyKind::random_tiebreak:
      return std::make_unique<RandomTiebreakPolicy>(schedule_seed, slack_s);
    case GrantPolicyKind::pct:
      return std::make_unique<PctPolicy>(schedule_seed, num_nodes, slack_s);
  }
  throw InvalidArgument("unknown GrantPolicyKind");
}

}  // namespace teamnet::sim::des
