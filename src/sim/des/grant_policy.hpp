// Pluggable grant tie-break for the discrete-event engine (DESIGN.md §11).
//
// The conservative grant rule has two parts. The FLOOR — only a node whose
// key (clock if running, determined wake time if blocked-wakeable) equals
// the global minimum may act — is what keeps the simulation causal and is
// not negotiable. The TIE-BREAK — which of several nodes sharing that
// minimum key acts first — is pure schedule choice: every choice is a legal
// interleaving of the protocol. A GrantPolicy owns exactly that choice, so
// the schedule explorer can rerun an unchanged scenario under many legal
// interleavings and check that discrete outcomes never depend on the pick.
//
// Purity contract (load-bearing): `choose` is re-evaluated at unpredictable
// REAL times — every spurious condvar wakeup and every racing thread's
// grant check calls it again. It must therefore be a pure function of
// (virtual time, eligible set, salt, policy state), never consume from a
// stateful RNG per call, or wall-clock scheduling would leak straight back
// into the virtual schedule. Policy state may change only in `note_step`,
// which the engine calls under its mutex for granted operations only —
// those are serialized in virtual-time order, so the state stream is
// deterministic too.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

namespace teamnet::sim::des {

enum class GrantPolicyKind {
  /// Lexicographic minimum (time, node_id): the engine's historical rule
  /// and the default everywhere. Byte-compatible with pre-policy builds.
  canonical,
  /// Seeded stateless-hash choice among all simultaneously eligible nodes.
  random_tiebreak,
  /// PCT-style: a seeded priority permutation picks the highest-priority
  /// eligible node; at seeded change points the stepping node is demoted
  /// below everyone, forcing a deep preemption.
  pct,
};

const char* to_string(GrantPolicyKind kind);
std::optional<GrantPolicyKind> parse_grant_policy(std::string_view name);

/// splitmix64 finalizer — the stateless mixer shared by the hash-based
/// policies and the engine's schedule digest.
std::uint64_t mix64(std::uint64_t x);
std::uint64_t double_bits(double v);

class GrantPolicy {
 public:
  virtual ~GrantPolicy() = default;

  /// Picks the winner among `eligible` (non-empty, ascending node ids, all
  /// sharing virtual time `time`). `salt` is engine state that changes only
  /// under granted operations (schedule-deterministic); policies may mix it
  /// in for variety across repeated ties at the same virtual time. Must be
  /// pure: same arguments + same policy state → same winner.
  virtual int choose(double time, const std::vector<int>& eligible,
                     std::uint64_t salt) const = 0;

  /// Called by the engine (under its mutex) each time `node` performs a
  /// granted timed operation (advance or send). The only place policy
  /// state may change.
  virtual void note_step(int /*node*/) {}

  /// Width of the eligibility window in virtual seconds. 0 (canonical)
  /// means only exact key ties are simultaneous. A positive slack widens
  /// "simultaneously eligible" to every node within `t_min + slack`,
  /// modelling bounded medium-arbitration jitter: real radios do not
  /// serialize near-coincident transmissions in timestamp order, so legal
  /// schedules include ones where a node a hair ahead captures the medium
  /// first. Reordering inside the window only perturbs virtual TIMES (the
  /// shared-medium cursor); per-link delivery content stays fire-order
  /// deterministic, so discrete protocol outcomes must not change — which
  /// is exactly the invariant the explorer checks. Must be a constant per
  /// policy instance (same purity argument as `choose`).
  virtual double slack() const { return 0.0; }
};

/// `schedule_seed`, `num_nodes` and `slack_s` are ignored by the canonical
/// policy; the perturbing policies use `slack_s` as their eligibility
/// window (see GrantPolicy::slack).
std::unique_ptr<GrantPolicy> make_grant_policy(GrantPolicyKind kind,
                                               std::uint64_t schedule_seed,
                                               int num_nodes,
                                               double slack_s = 0.0);

}  // namespace teamnet::sim::des
