#include "sim/des/des_channel.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace teamnet::sim::des {

namespace {

/// Cached registry handles — one name lookup per process, not per message.
struct WireCounters {
  obs::Counter& bytes_sent;
  obs::Counter& msgs_sent;
  obs::Counter& bytes_received;
  obs::Counter& msgs_received;

  static WireCounters& instance() {
    static WireCounters& counters = *new WireCounters{
        obs::MetricsRegistry::instance().counter("net.bytes_sent"),
        obs::MetricsRegistry::instance().counter("net.msgs_sent"),
        obs::MetricsRegistry::instance().counter("net.bytes_received"),
        obs::MetricsRegistry::instance().counter("net.msgs_received"),
    };
    return counters;
  }
};

}  // namespace

DesChannel::DesChannel(Engine& engine, int self, std::shared_ptr<Mailbox> in,
                       std::shared_ptr<Mailbox> out, net::LinkProfile link)
    : engine_(engine),
      self_(self),
      in_(std::move(in)),
      out_(std::move(out)),
      link_(link),
      tx_label_("tx_bytes " + std::to_string(self) + "->" +
                (out_ ? std::to_string(out_->owner()) : std::string("?"))),
      rx_label_("rx_bytes " +
                (out_ ? std::to_string(out_->owner()) : std::string("?")) +
                "->" + std::to_string(self)) {
  TEAMNET_CHECK_MSG(in_ != nullptr && out_ != nullptr,
                    "DesChannel needs both mailboxes");
  TEAMNET_CHECK_MSG(in_->owner() == self_, "inbox must belong to self");
}

void DesChannel::send(std::string bytes) {
  const auto payload = static_cast<std::int64_t>(bytes.size());
  engine_.send(self_, out_, std::move(bytes), link_);
  // Same wire-level accounting as SimChannel (the layer that knows the
  // endpoints counts; decorators above never double-count).
  WireCounters::instance().bytes_sent.add(payload);
  WireCounters::instance().msgs_sent.increment();
  if (obs::Tracer::active()) {
    const auto total =
        tx_bytes_.fetch_add(payload, std::memory_order_relaxed) + payload;
    obs::trace_counter(tx_label_.c_str(), static_cast<double>(total));
  }
}

std::string DesChannel::recv() {
  std::string bytes = engine_.recv(self_, *in_);
  note_received(bytes.size());
  return bytes;
}

std::optional<std::string> DesChannel::recv_timeout(double seconds) {
  auto bytes = engine_.recv_timeout(self_, *in_, seconds);
  if (bytes) note_received(bytes->size());
  return bytes;
}

void DesChannel::note_received(std::size_t payload) {
  WireCounters::instance().bytes_received.add(
      static_cast<std::int64_t>(payload));
  WireCounters::instance().msgs_received.increment();
  if (obs::Tracer::active()) {
    const auto total = rx_bytes_.fetch_add(static_cast<std::int64_t>(payload),
                                           std::memory_order_relaxed) +
                       static_cast<std::int64_t>(payload);
    obs::trace_counter(rx_label_.c_str(), static_cast<double>(total));
  }
}

void DesChannel::close() {
  engine_.close(*in_);
  engine_.close(*out_);
}

std::pair<net::ChannelPtr, net::ChannelPtr> make_des_pair(
    Engine& engine, int a, int b, const net::LinkProfile& link) {
  auto to_a = engine.make_mailbox(a);
  auto to_b = engine.make_mailbox(b);
  auto chan_a = std::make_unique<DesChannel>(engine, a, to_a, to_b, link);
  auto chan_b = std::make_unique<DesChannel>(engine, b, to_b, to_a, link);
  return {std::move(chan_a), std::move(chan_b)};
}

std::vector<std::vector<net::ChannelPtr>> make_des_mesh(
    Engine& engine, int n, const net::LinkProfile& link) {
  TEAMNET_CHECK_MSG(n >= 1 && n <= engine.num_nodes(),
                    "mesh larger than engine");
  std::vector<std::vector<net::ChannelPtr>> mesh(static_cast<std::size_t>(n));
  for (auto& row : mesh) row.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      auto [ci, cj] = make_des_pair(engine, i, j, link);
      mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          std::move(ci);
      mesh[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
          std::move(cj);
    }
  }
  return mesh;
}

}  // namespace teamnet::sim::des
