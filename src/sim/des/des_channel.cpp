#include "sim/des/des_channel.hpp"

#include <utility>

namespace teamnet::sim::des {

DesChannel::DesChannel(Engine& engine, int self, std::shared_ptr<Mailbox> in,
                       std::shared_ptr<Mailbox> out, net::LinkProfile link)
    : engine_(engine),
      self_(self),
      in_(std::move(in)),
      out_(std::move(out)),
      link_(link) {
  TEAMNET_CHECK_MSG(in_ != nullptr && out_ != nullptr,
                    "DesChannel needs both mailboxes");
  TEAMNET_CHECK_MSG(in_->owner() == self_, "inbox must belong to self");
}

void DesChannel::send(std::string bytes) {
  engine_.send(self_, out_, std::move(bytes), link_);
}

std::string DesChannel::recv() { return engine_.recv(self_, *in_); }

std::optional<std::string> DesChannel::recv_timeout(double seconds) {
  return engine_.recv_timeout(self_, *in_, seconds);
}

void DesChannel::close() {
  engine_.close(*in_);
  engine_.close(*out_);
}

std::pair<net::ChannelPtr, net::ChannelPtr> make_des_pair(
    Engine& engine, int a, int b, const net::LinkProfile& link) {
  auto to_a = engine.make_mailbox(a);
  auto to_b = engine.make_mailbox(b);
  auto chan_a = std::make_unique<DesChannel>(engine, a, to_a, to_b, link);
  auto chan_b = std::make_unique<DesChannel>(engine, b, to_b, to_a, link);
  return {std::move(chan_a), std::move(chan_b)};
}

std::vector<std::vector<net::ChannelPtr>> make_des_mesh(
    Engine& engine, int n, const net::LinkProfile& link) {
  TEAMNET_CHECK_MSG(n >= 1 && n <= engine.num_nodes(),
                    "mesh larger than engine");
  std::vector<std::vector<net::ChannelPtr>> mesh(static_cast<std::size_t>(n));
  for (auto& row : mesh) row.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      auto [ci, cj] = make_des_pair(engine, i, j, link);
      mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          std::move(ci);
      mesh[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
          std::move(cj);
    }
  }
  return mesh;
}

}  // namespace teamnet::sim::des
