#include "sim/des/explore.hpp"

#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace teamnet::sim::des {
namespace {

std::string hex64(std::uint64_t v) {
  std::ostringstream out;
  out << "0x" << std::hex << std::setfill('0') << std::setw(16) << v;
  return out.str();
}

std::string repro_command(const ExploreConfig& config, const ScheduleCase& c) {
  if (config.repro_prefix.empty()) return {};
  return config.repro_prefix + " --replay --policy=" + to_string(c.policy) +
         " --schedule-seed=" + std::to_string(c.schedule_seed);
}

std::string divergence_detail(const std::string& canonical,
                              const std::string& observed) {
  return "discrete outcome diverged from the canonical schedule\n"
         "--- canonical ---\n" +
         canonical + "\n--- perturbed ---\n" + observed;
}

}  // namespace

ScheduleCase case_at(const ExploreConfig& config, int i) {
  ScheduleCase c;
  c.policy = (i % 2 == 0) ? GrantPolicyKind::random_tiebreak
                          : GrantPolicyKind::pct;
  c.schedule_seed = config.schedule_seed0 + static_cast<std::uint64_t>(i);
  return c;
}

ExploreReport explore_schedules(const ScheduleRunner& runner,
                                const ExploreConfig& config) {
  TEAMNET_CHECK_MSG(config.num_schedules >= 0,
                    "num_schedules must be non-negative");
  ExploreReport report;

  const ScheduleCase canonical_case;  // canonical, seed 0
  report.baseline = runner(canonical_case);
  if (report.baseline.deadlocked || !report.baseline.error.empty()) {
    Violation v;
    v.schedule = canonical_case;
    v.kind = "baseline-failure";
    v.detail = report.baseline.deadlocked
                   ? "canonical run deadlocked"
                   : "canonical run failed: " + report.baseline.error;
    v.repro = repro_command(config, canonical_case);
    report.violations.push_back(std::move(v));
    return report;  // nothing sound to compare perturbed schedules against
  }

  for (int i = 0; i < config.num_schedules; ++i) {
    const ScheduleCase c = case_at(config, i);
    const RunOutcome outcome = runner(c);

    CaseRecord record;
    record.schedule = c;
    record.digest = outcome.digest;

    Violation v;
    v.schedule = c;
    v.repro = repro_command(config, c);
    if (outcome.deadlocked) {
      record.status = "deadlock";
      v.kind = "deadlock";
      v.detail = "run deadlocked under this schedule";
    } else if (!outcome.error.empty()) {
      record.status = "error";
      v.kind = "error";
      v.detail = outcome.error;
    } else if (outcome.discrete != report.baseline.discrete) {
      record.status = "divergence";
      v.kind = "outcome-divergence";
      v.detail = divergence_detail(report.baseline.discrete, outcome.discrete);
    } else {
      record.status = "match";
    }
    report.cases.push_back(record);
    if (record.status == "match") continue;

    if (config.replay_check) {
      // A counterexample is only a counterexample if it reproduces: rerun
      // the case and demand the identical interleaving and outcome. A
      // mismatch means the harness itself leaked nondeterminism — report
      // THAT, not the unreproducible "bug".
      const RunOutcome replay = runner(c);
      if (replay.digest != outcome.digest ||
          replay.discrete != outcome.discrete ||
          replay.deadlocked != outcome.deadlocked ||
          replay.error != outcome.error) {
        Violation flaky;
        flaky.schedule = c;
        flaky.kind = "replay-divergence";
        flaky.detail =
            "case did not replay bit-identically (original " + v.kind +
            "): digest " + hex64(outcome.digest) + " vs " +
            hex64(replay.digest);
        flaky.repro = v.repro;
        report.violations.push_back(std::move(flaky));
        continue;
      }
    }
    report.violations.push_back(std::move(v));
  }
  return report;
}

std::string format_report(const ExploreReport& report) {
  std::ostringstream out;
  out << "schedule exploration: cases=" << report.cases.size()
      << " baseline_digest=" << hex64(report.baseline.digest) << "\n";
  for (std::size_t i = 0; i < report.cases.size(); ++i) {
    const CaseRecord& r = report.cases[i];
    out << "case " << std::setfill('0') << std::setw(3) << i
        << std::setfill(' ') << " policy=" << to_string(r.schedule.policy)
        << " schedule_seed=" << r.schedule.schedule_seed
        << " digest=" << hex64(r.digest) << " status=" << r.status << "\n";
  }
  out << "violations: " << report.violations.size() << "\n";
  for (std::size_t i = 0; i < report.violations.size(); ++i) {
    const Violation& v = report.violations[i];
    out << "violation " << i << ": kind=" << v.kind
        << " policy=" << to_string(v.schedule.policy)
        << " schedule_seed=" << v.schedule.schedule_seed << "\n";
    if (!v.repro.empty()) out << "  repro: " << v.repro << "\n";
    std::istringstream detail(v.detail);
    for (std::string line; std::getline(detail, line);) {
      out << "  " << line << "\n";
    }
  }
  out << (report.passed() ? "PASS" : "FAIL") << "\n";
  return out.str();
}

}  // namespace teamnet::sim::des
