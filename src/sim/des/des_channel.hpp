// Channel implementation backed by the discrete-event engine.
//
// DesChannel is the DES counterpart of make_sim_channel: the same blocking
// Channel interface the protocol code already runs over, but every send
// schedules a delivery event in the engine and every recv parks the node
// thread until the engine hands the message over in virtual-time order.
// Unlike SimChannel there is no timestamp stamped into the payload — the
// engine knows the sender's clock — so decorators that inspect or mutate
// bytes (FaultyChannel corruption, fuzzed decoders) see the pure payload,
// and byte counters match SimChannel's payload accounting.
//
// Composable under make_faulty_channel exactly like SimChannel; the chaos
// scenario wraps mesh legs without caring which scheduler built them.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/transport.hpp"
#include "sim/des/engine.hpp"

namespace teamnet::sim::des {

class DesChannel final : public net::Channel {
 public:
  /// Endpoint at node `self`: reads from `in` (messages addressed to self),
  /// writes into `out` (the peer's inbox) over `link`. `engine` must
  /// outlive the channel.
  DesChannel(Engine& engine, int self, std::shared_ptr<Mailbox> in,
             std::shared_ptr<Mailbox> out, net::LinkProfile link);

  void send(std::string bytes) override;
  std::string recv() override;
  std::optional<std::string> recv_timeout(double seconds) override;
  /// Closes both directions (InProc close semantics): queued and in-flight
  /// messages still drain, then readers on either end get NetworkError.
  void close() override;

 private:
  void note_received(std::size_t payload);

  Engine& engine_;
  const int self_;
  std::shared_ptr<Mailbox> in_;
  std::shared_ptr<Mailbox> out_;
  const net::LinkProfile link_;
  const std::string tx_label_;
  const std::string rx_label_;
  std::atomic<std::int64_t> tx_bytes_{0};
  std::atomic<std::int64_t> rx_bytes_{0};
};

/// Connected DES channel pair between nodes `a` and `b`.
std::pair<net::ChannelPtr, net::ChannelPtr> make_des_pair(
    Engine& engine, int a, int b, const net::LinkProfile& link);

/// Fully connected DES mesh of `n` nodes, laid out exactly like
/// make_sim_mesh: mesh[i][j] is node i's channel to node j (nullptr on the
/// diagonal). `engine` must have at least `n` nodes and outlive the mesh.
std::vector<std::vector<net::ChannelPtr>> make_des_mesh(
    Engine& engine, int n, const net::LinkProfile& link);

}  // namespace teamnet::sim::des
