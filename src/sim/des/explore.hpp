// Schedule explorer (DESIGN.md §11): reruns ONE unchanged scenario under
// many legal interleavings and checks that nothing the protocol promises
// depends on which interleaving ran.
//
// The conservative grant rule leaves exactly one degree of freedom — which
// of several simultaneously eligible nodes acts first (grant_policy.hpp).
// The explorer sweeps that freedom: it runs the scenario once under the
// canonical policy to establish the reference outcome, then N more times
// under seeded perturbation policies (random tie-break and PCT-style
// priorities, alternating), and flags any schedule where
//
//   * the DISCRETE outcome diverges from the canonical run — answers,
//     accuracy, traffic counts, fault schedules must be schedule-invariant
//     (latency and utilisation legitimately vary with the schedule and are
//     excluded by the runner's serialization);
//   * the run deadlocks (des::DeadlockError);
//   * an invariant trips — the engine asserts causality (no delivery
//     before its send) and full retirement (every worker declared done),
//     and any protocol TEAMNET_CHECK surfaces here too.
//
// Every violation carries a replayable counterexample: the (policy,
// schedule_seed) pair plus a ready-to-paste repro command. Replays are
// verified bit-exact — the harness reruns a violating case and demands the
// same schedule digest and discrete bytes before reporting it, so a flaky
// (wall-clock-dependent) "counterexample" is itself reported as a
// reproducibility violation rather than handed to a human.
//
// This header is scenario-agnostic: callers supply a ScheduleRunner that
// executes their scenario under a given ScheduleCase. Fixture runners for
// the paper's scenarios live in sim/explore_scenarios.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/des/grant_policy.hpp"

namespace teamnet::sim::des {

/// One point in schedule space: which tie-break policy and which seed.
struct ScheduleCase {
  GrantPolicyKind policy = GrantPolicyKind::canonical;
  std::uint64_t schedule_seed = 0;
};

/// What one run of the scenario produced, as the explorer sees it.
struct RunOutcome {
  /// Byte-stable serialization of every SCHEDULE-INVARIANT outcome
  /// (answers, accuracy, traffic, fault schedules). Must exclude anything
  /// that legitimately varies with the schedule (latency, utilisation).
  std::string discrete;
  /// Engine schedule fingerprint (Engine::schedule_digest) — identifies
  /// the interleaving itself so replays can be checked bit-exact.
  std::uint64_t digest = 0;
  bool deadlocked = false;  ///< run raised des::DeadlockError
  std::string error;        ///< non-empty: run failed (message), e.g. an
                            ///< InvariantError from the engine or protocol
};

/// Executes the scenario under `c` and reports what happened. Must catch
/// DeadlockError (-> deadlocked) and Error (-> error) itself; anything it
/// lets escape aborts the whole exploration.
using ScheduleRunner = std::function<RunOutcome(const ScheduleCase&)>;

struct ExploreConfig {
  /// Perturbed schedules to try on top of the canonical baseline run.
  int num_schedules = 50;
  /// First schedule seed; case i uses schedule_seed0 + i.
  std::uint64_t schedule_seed0 = 1;
  /// Rerun every violating case and demand bit-identical (digest,
  /// discrete) before reporting it as a counterexample.
  bool replay_check = true;
  /// Prefix for the repro command attached to violations, e.g.
  /// "schedule_explore --scenario=chaos --seed=3". Empty = no command.
  std::string repro_prefix;
};

struct Violation {
  ScheduleCase schedule;
  /// "deadlock", "error", "outcome-divergence", "replay-divergence" or
  /// "baseline-failure".
  std::string kind;
  std::string detail;  ///< human-readable evidence (diff, message)
  std::string repro;   ///< ready-to-paste replay command (may be empty)
};

/// Per-case record, kept for all cases (not just violations) so reports are
/// byte-stable and digests can be audited across seeds.
struct CaseRecord {
  ScheduleCase schedule;
  std::uint64_t digest = 0;
  std::string status;  ///< "match", "deadlock", "error", "divergence"
};

struct ExploreReport {
  RunOutcome baseline;
  std::vector<CaseRecord> cases;
  std::vector<Violation> violations;
  bool passed() const { return violations.empty(); }
};

/// Runs the canonical baseline, then `config.num_schedules` perturbed
/// schedules (alternating random-tiebreak / PCT), checking each against the
/// baseline's discrete outcome. Deterministic: same (runner behaviour,
/// config) -> identical report, byte for byte through format_report.
ExploreReport explore_schedules(const ScheduleRunner& runner,
                                const ExploreConfig& config);

/// Byte-stable plain-text rendering of a report (no timestamps, no
/// pointers): the determinism gate compares two of these with EXPECT_EQ.
std::string format_report(const ExploreReport& report);

/// The case the explorer runs at index `i` (exposed so a --replay driver
/// can reproduce any case from its index, and tests can pin the mix).
ScheduleCase case_at(const ExploreConfig& config, int i);

}  // namespace teamnet::sim::des
