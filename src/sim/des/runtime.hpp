// Scheduler selection for the scenario drivers.
//
// SimNet is the one seam the drivers talk to: a fully connected virtual
// mesh plus the clock/traffic surface, built either over free-running
// threads (VirtualClock + make_sim_mesh, the historical mode) or over the
// discrete-event engine (Engine + make_des_mesh, bit-stable virtual time).
// The protocol code underneath is identical; only message timing and
// thread admission differ.
#pragma once

#include <cstdint>
#include <memory>

#include "net/transport.hpp"
#include "net/virtual_clock.hpp"
#include "sim/des/grant_policy.hpp"

namespace teamnet::sim {

enum class Scheduler {
  free_running,    ///< node threads run unchecked; latency wobbles ≤ 1 link
                   ///< latency between runs (DESIGN.md §8)
  discrete_event,  ///< conservative DES; whole ScenarioResult is bit-stable
};

const char* to_string(Scheduler scheduler);

/// A simulated mesh of `num_nodes` nodes under one scheduler.
class SimNet {
 public:
  virtual ~SimNet() = default;

  virtual Scheduler scheduler() const = 0;
  virtual int num_nodes() const = 0;

  /// Node `from`'s channel to node `to`. Invalid after take_channel.
  virtual net::Channel& channel(int from, int to) = 0;
  /// Transfers ownership of the (from, to) leg, e.g. to wrap it in a
  /// FaultyChannel. The slot becomes empty; close_all skips it.
  virtual net::ChannelPtr take_channel(int from, int to) = 0;

  virtual double node_time(int node) const = 0;
  /// Charges `seconds` of local compute to `node`'s virtual clock.
  virtual void advance(int node, double seconds) = 0;
  virtual std::int64_t bytes_delivered() const = 0;
  virtual std::int64_t messages_delivered() const = 0;

  /// Declares `node` done with virtual time (see Engine::retire). Every
  /// driver must retire a node when its protocol role ends — workers when
  /// the serve loop exits, the master after shutdown and before any join —
  /// or pending deliveries stall behind the idle node's clock. No-op under
  /// free_running.
  virtual void retire(int node) = 0;

  /// Closes every channel leg still owned by the mesh (error teardown).
  virtual void close_all() = 0;

  /// End-of-run check + fingerprint, called by drivers after every node
  /// thread joined. Under discrete_event: verifies every node retired (a
  /// protocol invariant — an unretired node means a worker exited without
  /// declaring itself done) and returns the engine's schedule digest.
  /// Under free_running: no check, returns 0.
  virtual std::uint64_t finish() = 0;
};

/// Schedule-perturbation knobs for the discrete-event mesh; free_running
/// ignores them. The default (canonical, seed 0) is byte-compatible with
/// the historical two-argument factory.
struct SimNetOptions {
  des::GrantPolicyKind grant_policy = des::GrantPolicyKind::canonical;
  std::uint64_t schedule_seed = 0;
  /// Eligibility window for the perturbing policies (virtual seconds; see
  /// des::GrantPolicy::slack). Ignored by canonical, so the default
  /// byte-identity guarantee is unaffected.
  double schedule_slack_s = 0.0;
};

std::unique_ptr<SimNet> make_sim_net(Scheduler scheduler, int num_nodes,
                                     const net::LinkProfile& link);
std::unique_ptr<SimNet> make_sim_net(Scheduler scheduler, int num_nodes,
                                     const net::LinkProfile& link,
                                     const SimNetOptions& options);

}  // namespace teamnet::sim
