#include "sim/explore_scenarios.hpp"

#include <iomanip>
#include <memory>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "data/blobs.hpp"
#include "moe/sg_moe.hpp"
#include "nn/mlp.hpp"
#include "sim/des/engine.hpp"

namespace teamnet::sim {
namespace {

// ---- fixtures (same shapes as the determinism gate) ------------------------

data::Dataset blob_test_set() {
  data::BlobsConfig cfg;
  cfg.num_samples = 200;
  cfg.num_classes = 4;
  cfg.dims = 8;
  cfg.seed = 21;
  return data::make_blobs(cfg);
}

std::vector<std::unique_ptr<nn::MlpNet>> make_experts(int k) {
  std::vector<std::unique_ptr<nn::MlpNet>> experts;
  for (int i = 0; i < k; ++i) {
    nn::MlpConfig cfg;
    cfg.in_features = 8;
    cfg.num_classes = 4;
    cfg.depth = 2;
    cfg.hidden = 12;
    Rng rng(100 + i);
    experts.push_back(std::make_unique<nn::MlpNet>(cfg, rng));
  }
  return experts;
}

ScenarioConfig scenario_config(const ExploreScenarioOptions& options,
                               const des::ScheduleCase& c) {
  ScenarioConfig cfg;
  cfg.num_queries = options.num_queries;
  cfg.link = options.link;
  cfg.seed = options.seed;
  cfg.scheduler = Scheduler::discrete_event;
  cfg.grant_policy = c.policy;
  cfg.schedule_seed = c.schedule_seed;
  cfg.schedule_slack_s = options.schedule_slack_s;
  return cfg;
}

/// Wraps a scenario invocation into the explorer's outcome shape,
/// translating the two failure modes the explorer distinguishes.
template <typename Run>
des::RunOutcome guarded_run(Run&& run) {
  des::RunOutcome out;
  try {
    std::forward<Run>(run)(out);
  } catch (const des::DeadlockError&) {
    out.deadlocked = true;
  } catch (const Error& e) {
    out.error = e.what();
  }
  return out;
}

struct TeamNetFixture {
  std::vector<std::unique_ptr<nn::MlpNet>> experts = make_experts(3);
  data::Dataset test = blob_test_set();

  std::vector<nn::Module*> expert_ptrs() const {
    std::vector<nn::Module*> ptrs;
    for (const auto& e : experts) ptrs.push_back(e.get());
    return ptrs;
  }
};

}  // namespace

ChaosConfig ExploreScenarioOptions::default_explore_chaos() {
  ChaosConfig chaos;
  chaos.faults.drop_prob = 0.2;
  chaos.faults.corrupt_prob = 0.1;
  chaos.faults.duplicate_prob = 0.15;
  chaos.worker_timeout_s = 0.25;
  chaos.probe_interval = 2;
  chaos.partition_worker = 0;
  chaos.partition_from_query = 3;
  chaos.heal_at_query = 6;
  return chaos;
}

ResilienceConfig ExploreScenarioOptions::default_explore_resilience() {
  ResilienceConfig res;
  res.faults.drop_prob = 0.2;
  res.faults.duplicate_prob = 0.15;
  res.worker_timeout_s = 0.25;
  res.probe_interval = 2;
  res.quorum = 2;  // master + one worker completes the gather
  res.hedging = true;
  res.hedge_min_delay_s = 0.002;
  return res;
}

const std::vector<std::string>& explore_scenario_names() {
  static const std::vector<std::string> names = {"teamnet", "mpi", "sg-moe",
                                                 "chaos", "resilience"};
  return names;
}

std::string discrete_bytes(const ScenarioResult& result) {
  std::ostringstream out;
  out << std::setprecision(17);
  out << "approach=" << result.approach << "\n"
      << "num_nodes=" << result.num_nodes << "\n"
      << "accuracy_pct=" << result.accuracy_pct << "\n"
      << "bytes_per_query=" << result.bytes_per_query << "\n"
      << "messages_per_query=" << result.messages_per_query << "\n";
  return out.str();
}

std::string discrete_bytes(const ChaosResult& result) {
  std::ostringstream out;
  out << discrete_bytes(result.scenario);
  out << "live_nodes=";
  for (std::size_t i = 0; i < result.live_nodes.size(); ++i) {
    if (i != 0) out << ",";
    out << result.live_nodes[i];
  }
  out << "\ncorrect=";
  for (char c : result.correct) out << (c ? '1' : '0');
  out << "\nstale_replies=" << result.stale_replies
      << "\nrejoins=" << result.rejoins
      << "\nfaults_injected=" << result.faults_injected
      << "\nfault_schedule=" << result.fault_schedule << "\n";
  return out.str();
}

std::string discrete_bytes(const ResilienceResult& result) {
  const std::size_t n = result.degradation.size();
  const bool accounted =
      result.full_gathers + result.quorum_gathers + result.local_only_gathers ==
      static_cast<std::int64_t>(n);
  const bool vectors_complete =
      result.latency_ms.size() == n && result.correct.size() == n;
  const bool hedges_bounded = result.hedge_wins <= result.hedges_sent &&
                              result.hedge_duplicates <= result.hedges_sent;
  const bool non_negative =
      result.full_gathers >= 0 && result.quorum_gathers >= 0 &&
      result.local_only_gathers >= 0 && result.hedges_sent >= 0 &&
      result.hedge_wins >= 0 && result.hedge_duplicates >= 0 &&
      result.breaker_opens >= 0 && result.rejoins >= 0 &&
      result.stale_replies >= 0 && result.expired_drops >= 0 &&
      result.faults_injected >= 0;
  std::ostringstream out;
  out << "approach=" << result.scenario.approach << "\n"
      << "num_nodes=" << result.scenario.num_nodes << "\n"
      << "num_queries=" << n << "\n"
      << "degradation_accounted=" << (accounted ? 1 : 0) << "\n"
      << "vectors_complete=" << (vectors_complete ? 1 : 0) << "\n"
      << "hedges_bounded=" << (hedges_bounded ? 1 : 0) << "\n"
      << "counters_non_negative=" << (non_negative ? 1 : 0) << "\n";
  return out.str();
}

des::ScheduleRunner make_explore_runner(const std::string& scenario,
                                        const ExploreScenarioOptions& options) {
  if (scenario == "teamnet") {
    auto fixture = std::make_shared<TeamNetFixture>();
    return [fixture, options](const des::ScheduleCase& c) {
      return guarded_run([&](des::RunOutcome& out) {
        const auto result = run_teamnet(fixture->expert_ptrs(), fixture->test,
                                        scenario_config(options, c));
        out.discrete = discrete_bytes(result);
        out.digest = result.schedule_digest;
      });
    };
  }
  if (scenario == "mpi") {
    nn::MlpConfig cfg;
    cfg.in_features = 8;
    cfg.num_classes = 4;
    cfg.depth = 3;
    cfg.hidden = 12;
    Rng rng(7);
    auto model = std::make_shared<nn::MlpNet>(cfg, rng);
    auto test = std::make_shared<data::Dataset>(blob_test_set());
    return [model, test, options](const des::ScheduleCase& c) {
      return guarded_run([&](des::RunOutcome& out) {
        const auto result =
            run_mpi_matrix(*model, *test, scenario_config(options, c), 3);
        out.discrete = discrete_bytes(result);
        out.digest = result.schedule_digest;
      });
    };
  }
  if (scenario == "sg-moe") {
    moe::SgMoeConfig cfg;
    cfg.num_experts = 3;
    cfg.epochs = 1;
    auto model =
        std::make_shared<moe::SgMoe>(cfg, 8, [](int /*index*/, Rng& rng) {
          nn::MlpConfig mc;
          mc.in_features = 8;
          mc.num_classes = 4;
          mc.depth = 2;
          mc.hidden = 10;
          return std::make_unique<nn::MlpNet>(mc, rng);
        });
    auto test = std::make_shared<data::Dataset>(blob_test_set());
    model->train(*test);
    return [model, test, options](const des::ScheduleCase& c) {
      return guarded_run([&](des::RunOutcome& out) {
        const auto result =
            run_sg_moe(*model, *test, scenario_config(options, c));
        out.discrete = discrete_bytes(result);
        out.digest = result.schedule_digest;
      });
    };
  }
  if (scenario == "chaos") {
    auto fixture = std::make_shared<TeamNetFixture>();
    ChaosConfig chaos = options.chaos;
    chaos.faults.seed = options.seed;
    return [fixture, options, chaos](const des::ScheduleCase& c) {
      return guarded_run([&](des::RunOutcome& out) {
        const auto result =
            run_teamnet_chaos(fixture->expert_ptrs(), fixture->test,
                              scenario_config(options, c), chaos);
        out.discrete = discrete_bytes(result);
        out.digest = result.scenario.schedule_digest;
      });
    };
  }
  if (scenario == "resilience") {
    auto fixture = std::make_shared<TeamNetFixture>();
    ResilienceConfig res = options.resilience;
    res.faults.seed = options.seed;
    return [fixture, options, res](const des::ScheduleCase& c) {
      return guarded_run([&](des::RunOutcome& out) {
        const auto result =
            run_teamnet_resilience(fixture->expert_ptrs(), fixture->test,
                                   scenario_config(options, c), res);
        out.discrete = discrete_bytes(result);
        out.digest = result.scenario.schedule_digest;
      });
    };
  }
  throw InvalidArgument("unknown explore scenario: " + scenario +
                        " (expected teamnet|mpi|sg-moe|chaos|resilience)");
}

}  // namespace teamnet::sim
