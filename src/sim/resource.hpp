// Resource-usage model: translates a node's model footprint and busy
// fraction into the memory/CPU/GPU percentages the paper's tables report.
//
// Memory% = (framework overhead + weights + working buffers) / device RAM.
// CPU%/GPU% scale the device's calibrated full-load utilization by the
// node's busy fraction (compute time / wall time per query): a node that
// spends most of a query waiting on WiFi shows low utilization — exactly
// the effect that makes TeamNet nodes cooler than the baseline in Table I.
#pragma once

#include "nn/module.hpp"
#include "sim/device.hpp"

namespace teamnet::sim {

struct ResourceUsage {
  double memory_pct = 0.0;
  double cpu_pct = 0.0;
  double gpu_pct = 0.0;
};

/// Working-set estimate for a model in bytes: weights + gradient-free
/// activation buffers (approximated as 3x the weights plus the I/O tensors).
std::int64_t model_working_set_bytes(nn::Module& model,
                                     const Shape& sample_shape);

/// `busy_fraction` is compute seconds / total seconds for one query on this
/// node, in [0, 1].
ResourceUsage estimate_resources(const DeviceProfile& device,
                                 std::int64_t working_set_bytes,
                                 double busy_fraction);

}  // namespace teamnet::sim
