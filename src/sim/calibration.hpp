// Calibration constants for the edge simulation.
//
// The paper's testbed used raw TCP sockets for TeamNet, gRPC or OpenMPI for
// SG-MoE, and OpenMPI for the partitioned baselines. Those stacks differ in
// per-message cost (marshalling, rendezvous, progress-engine latency), which
// is what separates SG-MoE-G from SG-MoE-M in Tables I-II. The constants
// below are effective per-message overheads chosen to reproduce the paper's
// ordering (sockets < gRPC < MPI) at WiFi scale; bandwidth and base latency
// come from net::wifi_link().
#pragma once

#include "net/virtual_clock.hpp"

namespace teamnet::sim {

/// Raw TCP sockets (TeamNet's transport).
constexpr double kSocketOverheadS = 0.0002;
/// gRPC: protobuf marshalling + HTTP/2 framing per call.
constexpr double kGrpcOverheadS = 0.0012;
/// OpenMPI over TCP: rendezvous + progress-engine polling per message.
constexpr double kMpiOverheadS = 0.0025;

inline net::LinkProfile wifi_with_overhead(double per_message_s) {
  net::LinkProfile link = net::wifi_link();
  link.per_message_overhead_s = per_message_s;
  return link;
}

inline net::LinkProfile socket_link() { return wifi_with_overhead(kSocketOverheadS); }
inline net::LinkProfile grpc_link() { return wifi_with_overhead(kGrpcOverheadS); }
inline net::LinkProfile mpi_link() { return wifi_with_overhead(kMpiOverheadS); }

}  // namespace teamnet::sim
