#include "sim/driver_util.hpp"

#include <string>
#include <utility>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace teamnet::sim {

std::thread spawn_sim_worker(SimNet& net, int node,
                             std::function<void()> body) {
  return std::thread([&net, node, body = std::move(body)] {
    // Trace time-source rule: inside the simulator every thread stamps
    // events with its node's virtual time, so traces are in virtual time
    // end to end (and byte-stable under discrete_event).
    obs::TraceTrack track(
        node, [&net, node] { return net.node_time(node); },
        "node" + std::to_string(node));
    try {
      body();
    } catch (const Error& e) {
      LOG_WARN("scenario worker thread exiting on error: " << e.what());
    }
    net.retire(node);
  });
}

net::ComputeHook make_compute_hook(SimNet& net, int node,
                                   const DeviceProfile& device,
                                   std::atomic<double>* compute_total) {
  return [&net, node, &device, compute_total](std::int64_t flops) {
    const double seconds = device.compute_time(flops);
    net.advance(node, seconds);
    if (compute_total != nullptr) {
      double expected = compute_total->load();
      while (!compute_total->compare_exchange_weak(expected,
                                                   expected + seconds)) {
      }
    }
  };
}

std::vector<int> sample_query_rows(const data::Dataset& test, int n,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> rows(static_cast<std::size_t>(n));
  for (auto& r : rows) r = rng.randint(0, static_cast<int>(test.size()) - 1);
  return rows;
}

Tensor query_row_tensor(const data::Dataset& test, int row) {
  return ops::take_rows(test.images, {row});
}

}  // namespace teamnet::sim
