#include "sim/scenario.hpp"

#include "sim/driver_util.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "common/annotations.hpp"
#include "common/logging.hpp"
#include "core/entropy.hpp"
#include "obs/percentile.hpp"
#include "obs/trace.hpp"
#include "moe/moe_serving.hpp"
#include "mpi/partitioned.hpp"
#include "net/collab.hpp"
#include "nn/loss.hpp"
#include "tensor/ops.hpp"

namespace teamnet::sim {

namespace {

// Worker-thread wrapper, compute hook and query sampling are shared with
// the load-generation driver — see sim/driver_util.hpp. Local aliases keep
// the call sites below readable.
constexpr auto spawn_worker = spawn_sim_worker;
constexpr auto make_hook = make_compute_hook;
constexpr auto sample_queries = sample_query_rows;
constexpr auto query_tensor = query_row_tensor;

double model_accuracy_pct(nn::Module& model, const data::Dataset& test) {
  model.set_training(false);
  return 100.0 * nn::accuracy(model.predict(test.images), test.labels);
}

SimNetOptions net_options(const ScenarioConfig& config) {
  SimNetOptions opts;
  opts.grant_policy = config.grant_policy;
  opts.schedule_seed = config.schedule_seed;
  opts.schedule_slack_s = config.schedule_slack_s;
  return opts;
}

}  // namespace

ScenarioResult run_baseline(nn::Module& model, const data::Dataset& test,
                            const ScenarioConfig& config) {
  model.set_training(false);
  const Shape sample_shape = test.sample_shape();
  const std::int64_t flops = model.analyze(sample_shape).flops;

  ScenarioResult result;
  result.approach = "Baseline(" + model.name() + ")";
  result.num_nodes = 1;
  result.latency_ms = 1e3 * config.device.compute_time(flops);
  result.accuracy_pct = model_accuracy_pct(model, test);
  result.usage = estimate_resources(
      config.device, model_working_set_bytes(model, sample_shape),
      /*busy_fraction=*/1.0);
  return result;
}

ScenarioResult run_teamnet(const std::vector<nn::Module*>& experts,
                           const data::Dataset& test,
                           const ScenarioConfig& config) {
  return run_teamnet_heterogeneous(
      experts,
      std::vector<DeviceProfile>(experts.size(), config.device), test,
      config);
}

ScenarioResult run_teamnet_heterogeneous(
    const std::vector<nn::Module*>& experts,
    const std::vector<DeviceProfile>& devices, const data::Dataset& test,
    const ScenarioConfig& config) {
  TEAMNET_CHECK(experts.size() >= 2 && devices.size() == experts.size());
  const int k = static_cast<int>(experts.size());
  // Before any worker spawns: each scenario run gets its own track epoch so
  // its restarted virtual clock never rewinds a previous run's trace rows.
  obs::Tracer::instance().begin_epoch("teamnet");
  auto net = make_sim_net(config.scheduler, k, config.link,
                          net_options(config));

  std::atomic<double> master_compute{0.0};
  // Workers 1..k-1 serve their experts on their own device profiles.
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<net::CollaborativeWorker>> workers;
  for (int i = 1; i < k; ++i) {
    workers.push_back(std::make_unique<net::CollaborativeWorker>(
        *experts[static_cast<std::size_t>(i)], net->channel(i, 0)));
    workers.back()->set_compute_hook(
        make_hook(*net, i, devices[static_cast<std::size_t>(i)], nullptr));
    workers.back()->set_trace_node(i);
    threads.push_back(
        spawn_worker(*net, i, [w = workers.back().get()] { w->serve(); }));
  }

  std::vector<net::Channel*> worker_channels;
  for (int i = 1; i < k; ++i) {
    worker_channels.push_back(&net->channel(0, i));
  }
  net::CollaborativeMaster master(*experts[0], worker_channels);
  master.set_compute_hook(make_hook(*net, 0, devices[0], &master_compute));
  // Fault-free path: every flow this master opens is closed by a worker
  // and vice versa, so traced runs pass the no-dangling-flow check. The
  // chaos/resilience runners stay un-instrumented — a dropped request
  // would leave a by-design dangling arrow the validator cannot excuse.
  master.set_flow_trace(true);

  SimNet* netp = net.get();
  obs::TraceTrack track(0, [netp] { return netp->node_time(0); }, "master");
  const auto queries = sample_queries(test, config.num_queries, config.seed);
  double total_latency = 0.0;
  std::size_t correct = 0;
  const std::int64_t bytes_before = net->bytes_delivered();
  const std::int64_t msgs_before = net->messages_delivered();
  try {
    for (int row : queries) {
      const double t0 = net->node_time(0);
      auto res = master.infer(query_tensor(test, row));
      total_latency += net->node_time(0) - t0;
      if (res.predictions[0] == test.labels[static_cast<std::size_t>(row)]) {
        ++correct;
      }
    }
  } catch (...) {
    // Wake workers blocked in recv, release the master's virtual-time
    // floor, join them, then surface the error.
    net->close_all();
    net->retire(0);
    for (auto& t : threads) t.join();
    throw;
  }
  const std::int64_t bytes_used = net->bytes_delivered() - bytes_before;
  const std::int64_t msgs_used = net->messages_delivered() - msgs_before;
  master.shutdown();
  net->retire(0);
  for (auto& t : threads) t.join();

  ScenarioResult result;
  result.schedule_digest = net->finish();
  result.approach = "TeamNet";
  result.num_nodes = k;
  result.latency_ms = 1e3 * total_latency / config.num_queries;
  // Accuracy over the full test set via the same argmin-entropy rule the
  // protocol applies (protocol equivalence is covered by tests).
  {
    Tensor entropy({test.size(), k});
    std::vector<Tensor> probs(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
      probs[static_cast<std::size_t>(i)] = ops::softmax_rows(
          experts[static_cast<std::size_t>(i)]->predict(test.images));
      Tensor h = core::predictive_entropy(probs[static_cast<std::size_t>(i)]);
      for (std::int64_t r = 0; r < test.size(); ++r) {
        entropy[r * k + i] = h[r];
      }
    }
    const auto chosen = ops::argmin_rows(entropy);
    std::size_t ok = 0;
    for (std::int64_t r = 0; r < test.size(); ++r) {
      const Tensor& p = probs[static_cast<std::size_t>(chosen[
          static_cast<std::size_t>(r)])];
      const float* row = p.data() + r * p.dim(1);
      const int pred = static_cast<int>(
          std::max_element(row, row + p.dim(1)) - row);
      if (pred == test.labels[static_cast<std::size_t>(r)]) ++ok;
    }
    result.accuracy_pct =
        100.0 * static_cast<double>(ok) / static_cast<double>(test.size());
  }
  result.usage = estimate_resources(
      devices[0], model_working_set_bytes(*experts[0], test.sample_shape()),
      master_compute.load() / total_latency);
  result.bytes_per_query = static_cast<double>(bytes_used) / config.num_queries;
  result.messages_per_query =
      static_cast<double>(msgs_used) / config.num_queries;
  return result;
}

ChaosResult run_teamnet_chaos(const std::vector<nn::Module*>& experts,
                              const data::Dataset& test,
                              const ScenarioConfig& config,
                              const ChaosConfig& chaos) {
  TEAMNET_CHECK(experts.size() >= 2);
  TEAMNET_CHECK_MSG(
      chaos.partition_worker < static_cast<int>(experts.size()) - 1,
      "partition_worker must name a worker (0-based, < num_workers)");
  const int k = static_cast<int>(experts.size());
  obs::Tracer::instance().begin_epoch("teamnet-chaos");
  auto net = make_sim_net(config.scheduler, k, config.link,
                          net_options(config));
  SimNet* netp = net.get();

  std::atomic<double> master_compute{0.0};
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<net::CollaborativeWorker>> workers;
  for (int i = 1; i < k; ++i) {
    workers.push_back(std::make_unique<net::CollaborativeWorker>(
        *experts[static_cast<std::size_t>(i)], net->channel(i, 0)));
    workers.back()->set_compute_hook(
        make_hook(*net, i, config.device, nullptr));
    threads.push_back(
        spawn_worker(*net, i, [w = workers.back().get()] { w->serve(); }));
  }

  // The master reaches every worker through a FaultyChannel wrapped around
  // the sim channel. One base seed forks into per-worker streams, so the
  // whole fleet's fault schedule reproduces from chaos.faults.seed. Delay
  // faults advance the master's virtual clock instead of sleeping.
  Rng seeder(chaos.faults.seed);
  net::DelayFn delay = [netp](double seconds) { netp->advance(0, seconds); };
  std::vector<std::unique_ptr<net::FaultyChannel>> faulty;
  std::vector<net::Channel*> worker_channels;
  for (int i = 1; i < k; ++i) {
    net::FaultProfile profile = chaos.faults;
    profile.seed = seeder.fork(static_cast<std::uint64_t>(i)).engine()();
    faulty.push_back(std::make_unique<net::FaultyChannel>(
        net->take_channel(0, i), profile, delay));
    if (config.scheduler == Scheduler::discrete_event) {
      // Timeout budgets must burn virtual time, not wall time: the real
      // clock's sub-deadline remainders differ run to run and would leak
      // nondeterminism into the recv_timeout sequence the inner DesChannel
      // sees. Free-running keeps the default real clock (its deadlines
      // really do elapse in real time).
      faulty.back()->set_time_source([netp] { return netp->node_time(0); });
    }
    worker_channels.push_back(faulty.back().get());
  }

  net::CollaborativeMaster master(*experts[0], worker_channels);
  master.set_compute_hook(make_hook(*net, 0, config.device, &master_compute));
  master.set_worker_timeout(chaos.worker_timeout_s);
  master.set_probe_interval(chaos.probe_interval);
  master.set_time_source([netp] { return netp->node_time(0); });
  if (chaos.test_pre_qid_gather) master.set_test_pre_qid_gather(true);

  obs::TraceTrack track(0, [netp] { return netp->node_time(0); }, "master");
  const auto queries = sample_queries(test, config.num_queries, config.seed);
  ChaosResult result;
  double total_latency = 0.0;
  std::size_t n_correct = 0;
  const std::int64_t bytes_before = net->bytes_delivered();
  const std::int64_t msgs_before = net->messages_delivered();
  try {
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const int qi = static_cast<int>(q);
      if (chaos.partition_worker >= 0) {
        auto& link = *faulty[static_cast<std::size_t>(chaos.partition_worker)];
        if (qi == chaos.partition_from_query) link.set_partition(true, true);
        if (qi == chaos.heal_at_query) link.set_partition(false, false);
      }
      const int row = queries[q];
      const double t0 = net->node_time(0);
      auto res = master.infer(query_tensor(test, row));
      total_latency += net->node_time(0) - t0;
      const bool ok =
          res.predictions[0] == test.labels[static_cast<std::size_t>(row)];
      if (ok) ++n_correct;
      result.correct.push_back(ok ? 1 : 0);
      result.live_nodes.push_back(k - master.failed_workers());
    }
  } catch (...) {
    for (auto& link : faulty) link->close();
    net->close_all();
    net->retire(0);
    for (auto& t : threads) t.join();
    throw;
  }
  // Quiesce before teardown: a duplicated Infer on the last query leaves a
  // second reply in flight on a worker thread, and shutdown()'s close
  // would race with that send — making the traffic totals nondeterministic.
  // A Ping over each link's fault-free inner() path is answered only after
  // the worker has processed (and sent the replies for) everything queued
  // before it, so once the Pong is back, that worker's deliveries are
  // final. The sentinel id never collides with the master's probe ids.
  for (auto& link : faulty) {
    try {
      net::Message quiesce;
      quiesce.type = net::MsgType::Ping;
      quiesce.ints = {-1};
      link->inner().send(quiesce.encode());
      while (auto raw = link->inner().recv_timeout(1.0)) {
        net::Message msg = net::Message::decode(*raw);
        if (msg.type == net::MsgType::Pong && !msg.ints.empty() &&
            msg.ints[0] == -1) {
          break;
        }
      }
    } catch (const Error& e) {
      LOG_DEBUG("chaos quiesce skipped a worker: " << e.what());
    }
  }
  master.shutdown();  // closes the faulty channels, waking every worker
  net->retire(0);
  for (auto& t : threads) t.join();
  result.scenario.schedule_digest = net->finish();
  // Counted after the quiesce + join, so the totals are deterministic; they
  // include the quiesce Ping/Pong pairs and the Shutdown messages.
  const std::int64_t bytes_used = net->bytes_delivered() - bytes_before;
  const std::int64_t msgs_used = net->messages_delivered() - msgs_before;

  result.stale_replies = master.stale_replies_discarded();
  result.rejoins = master.rejoins();
  for (std::size_t i = 0; i < faulty.size(); ++i) {
    result.faults_injected += faulty[i]->faults_injected();
    result.fault_schedule += "worker " + std::to_string(i + 1) + ":\n";
    result.fault_schedule += faulty[i]->fault_schedule();
  }

  result.scenario.approach = "TeamNet-Chaos";
  result.scenario.num_nodes = k;
  result.scenario.latency_ms = 1e3 * total_latency / config.num_queries;
  result.scenario.accuracy_pct = 100.0 * static_cast<double>(n_correct) /
                                 static_cast<double>(queries.size());
  result.scenario.usage = estimate_resources(
      config.device,
      model_working_set_bytes(*experts[0], test.sample_shape()),
      total_latency > 0.0 ? master_compute.load() / total_latency : 0.0);
  result.scenario.bytes_per_query =
      static_cast<double>(bytes_used) / config.num_queries;
  result.scenario.messages_per_query =
      static_cast<double>(msgs_used) / config.num_queries;
  return result;
}

ResilienceResult run_teamnet_resilience(const std::vector<nn::Module*>& experts,
                                        const data::Dataset& test,
                                        const ScenarioConfig& config,
                                        const ResilienceConfig& res) {
  TEAMNET_CHECK(experts.size() >= 2);
  const int k = static_cast<int>(experts.size());
  // Node map: master 0, primary workers 1..k-1; with hedging, node k-1+i is
  // the backup replica serving worker i's expert (nodes k..2k-2).
  const int num_nodes = res.hedging ? 2 * k - 1 : k;
  obs::Tracer::instance().begin_epoch("teamnet-resilience");
  auto net = make_sim_net(config.scheduler, num_nodes, config.link,
                          net_options(config));
  SimNet* netp = net.get();

  std::atomic<double> master_compute{0.0};
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<net::CollaborativeWorker>> workers;
  // Every serving node (primary or backup) reads its own virtual clock, so
  // the propagated deadline stamps compare against the same time base the
  // master wrote them in (Lamport-synced on delivery).
  auto spawn_serving = [&](int node, int expert) {
    workers.push_back(std::make_unique<net::CollaborativeWorker>(
        *experts[static_cast<std::size_t>(expert)], net->channel(node, 0)));
    auto* w = workers.back().get();
    w->set_compute_hook(make_hook(*net, node, config.device, nullptr));
    w->set_time_source([netp, node] { return netp->node_time(node); });
    w->set_drop_expired(res.drop_expired);
    threads.push_back(spawn_worker(*net, node, [w] { w->serve(); }));
  };
  for (int i = 1; i < k; ++i) spawn_serving(i, i);
  if (res.hedging) {
    for (int i = 1; i < k; ++i) spawn_serving(k - 1 + i, i);
  }

  // Same fault plumbing as run_teamnet_chaos, extended to the backup links:
  // one base seed forks into per-node streams (node index = fork key), so
  // primaries keep their stream whether or not hedging adds backups.
  Rng seeder(res.faults.seed);
  net::DelayFn delay = [netp](double seconds) { netp->advance(0, seconds); };
  std::vector<std::unique_ptr<net::FaultyChannel>> faulty;
  auto wrap_link = [&](int node) -> net::Channel* {
    net::FaultProfile profile = res.faults;
    profile.seed = seeder.fork(static_cast<std::uint64_t>(node)).engine()();
    faulty.push_back(std::make_unique<net::FaultyChannel>(
        net->take_channel(0, node), profile, delay));
    if (config.scheduler == Scheduler::discrete_event) {
      // Virtual-time budgets for determinism — see run_teamnet_chaos.
      faulty.back()->set_time_source([netp] { return netp->node_time(0); });
    }
    return faulty.back().get();
  };
  std::vector<net::Channel*> worker_channels;
  for (int i = 1; i < k; ++i) worker_channels.push_back(wrap_link(i));
  std::vector<net::Channel*> backup_channels;
  if (res.hedging) {
    for (int i = 1; i < k; ++i) backup_channels.push_back(wrap_link(k - 1 + i));
  }

  net::CollaborativeMaster master(*experts[0], worker_channels);
  master.set_compute_hook(make_hook(*net, 0, config.device, &master_compute));
  master.set_worker_timeout(res.worker_timeout_s);
  master.set_probe_interval(res.probe_interval);
  master.set_time_source([netp] { return netp->node_time(0); });
  if (res.health) master.enable_health(res.health_config);
  if (res.quorum > 0) master.set_gather_quorum(res.quorum);
  if (res.hedging) {
    master.set_hedging(backup_channels, res.hedge_min_delay_s,
                       res.hedge_latency_factor);
  }

  obs::TraceTrack track(0, [netp] { return netp->node_time(0); }, "master");
  const auto queries = sample_queries(test, config.num_queries, config.seed);
  ResilienceResult result;
  double total_latency = 0.0;
  std::size_t n_correct = 0;
  const std::int64_t bytes_before = net->bytes_delivered();
  const std::int64_t msgs_before = net->messages_delivered();
  try {
    for (int row : queries) {
      const double t0 = net->node_time(0);
      auto r = master.infer(query_tensor(test, row));
      const double latency_s = net->node_time(0) - t0;
      total_latency += latency_s;
      result.latency_ms.push_back(1e3 * latency_s);
      result.degradation.push_back(static_cast<int>(r.degradation));
      const bool ok =
          r.predictions[0] == test.labels[static_cast<std::size_t>(row)];
      if (ok) ++n_correct;
      result.correct.push_back(ok ? 1 : 0);
    }
  } catch (...) {
    for (auto& link : faulty) link->close();
    net->close_all();
    net->retire(0);
    for (auto& t : threads) t.join();
    throw;
  }
  // Quiesce every link (backups included) before teardown — same rationale
  // as run_teamnet_chaos: a hedged duplicate on the last query leaves a
  // reply in flight whose send would otherwise race shutdown()'s close.
  for (auto& link : faulty) {
    try {
      net::Message quiesce;
      quiesce.type = net::MsgType::Ping;
      quiesce.ints = {-1};
      link->inner().send(quiesce.encode());
      while (auto raw = link->inner().recv_timeout(1.0)) {
        net::Message msg = net::Message::decode(*raw);
        if (msg.type == net::MsgType::Pong && !msg.ints.empty() &&
            msg.ints[0] == -1) {
          break;
        }
      }
    } catch (const Error& e) {
      LOG_DEBUG("resilience quiesce skipped a worker: " << e.what());
    }
  }
  master.shutdown();  // closes primaries and backups, waking every worker
  net->retire(0);
  for (auto& t : threads) t.join();
  result.scenario.schedule_digest = net->finish();
  const std::int64_t bytes_used = net->bytes_delivered() - bytes_before;
  const std::int64_t msgs_used = net->messages_delivered() - msgs_before;

  result.p50_ms = obs::nearest_rank_percentile(result.latency_ms, 50.0);
  result.p99_ms = obs::nearest_rank_percentile(result.latency_ms, 99.0);
  result.full_gathers = master.full_gathers();
  result.quorum_gathers = master.quorum_gathers();
  result.local_only_gathers = master.local_only_gathers();
  result.hedges_sent = master.hedges_sent();
  result.hedge_wins = master.hedge_wins();
  result.hedge_duplicates = master.hedge_duplicates();
  result.breaker_opens =
      master.health() != nullptr ? master.health()->breaker_opens() : 0;
  result.rejoins = master.rejoins();
  result.stale_replies = master.stale_replies_discarded();
  for (const auto& w : workers) result.expired_drops += w->expired_dropped();
  for (const auto& link : faulty) {
    result.faults_injected += link->faults_injected();
  }

  result.scenario.approach = "TeamNet-Resilience";
  result.scenario.num_nodes = num_nodes;
  result.scenario.latency_ms = 1e3 * total_latency / config.num_queries;
  result.scenario.accuracy_pct = 100.0 * static_cast<double>(n_correct) /
                                 static_cast<double>(queries.size());
  result.scenario.usage = estimate_resources(
      config.device,
      model_working_set_bytes(*experts[0], test.sample_shape()),
      total_latency > 0.0 ? master_compute.load() / total_latency : 0.0);
  result.scenario.bytes_per_query =
      static_cast<double>(bytes_used) / config.num_queries;
  result.scenario.messages_per_query =
      static_cast<double>(msgs_used) / config.num_queries;
  return result;
}

namespace {

/// Shared runner for the MPI executors: spins `num_nodes` rank threads.
/// Each rank builds its executor once via `make_runner(comm, hook)` and
/// then, per query, receives the input bcast from rank 0 and runs it.
template <typename MakeRunner>
ScenarioResult run_mpi_generic(const std::string& approach, int num_nodes,
                               const data::Dataset& test,
                               const ScenarioConfig& config,
                               nn::Module& model_for_metrics,
                               MakeRunner make_runner) {
  model_for_metrics.set_training(false);  // before any rank thread starts
  obs::Tracer::instance().begin_epoch(approach);
  auto net = make_sim_net(config.scheduler, num_nodes, config.link,
                          net_options(config));

  const auto queries = sample_queries(test, config.num_queries, config.seed);
  std::atomic<double> rank0_compute{0.0};

  auto rank_main = [&](int rank) {
    std::vector<net::Channel*> peers(static_cast<std::size_t>(num_nodes),
                                     nullptr);
    for (int r = 0; r < num_nodes; ++r) {
      if (r != rank) {
        peers[static_cast<std::size_t>(r)] = &net->channel(rank, r);
      }
    }
    mpi::Communicator comm(rank, peers);
    net::ComputeHook hook = make_hook(*net, rank, config.device,
                                      rank == 0 ? &rank0_compute : nullptr);
    auto run_query = make_runner(comm, hook);
    for (int row : queries) {
      Tensor x;
      if (rank == 0) x = query_tensor(test, row);
      x = comm.bcast(x.defined() ? x : Tensor({1}), 0);
      run_query(x);
    }
  };

  // A rank that throws records the first error and closes the mesh so the
  // surviving ranks (blocked in collectives) fail fast instead of
  // deadlocking; every thread is always joined before the error resurfaces.
  // Each rank retires on exit, error or not, so remaining ranks' deliveries
  // keep flowing under discrete_event.
  // `error_mutex` (leaf lock) guards `first_error`; both are stack locals
  // whose lifetime spans every rank thread, joined below before either is
  // read. Locals cannot carry TN_GUARDED_BY, so the annotated wrappers
  // here buy the lint funnel rather than analysis coverage.
  Mutex error_mutex;
  std::exception_ptr first_error;
  auto rank_guarded = [&](int rank) {
    obs::TraceTrack track(
        rank, [&net, rank] { return net->node_time(rank); },
        "rank" + std::to_string(rank));
    try {
      rank_main(rank);
    } catch (...) {
      {
        MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      net->close_all();
    }
    net->retire(rank);
  };

  const std::int64_t bytes_before = net->bytes_delivered();
  const std::int64_t msgs_before = net->messages_delivered();
  const double t0 = net->node_time(0);
  std::vector<std::thread> threads;
  for (int r = 1; r < num_nodes; ++r) {
    threads.emplace_back(rank_guarded, r);
  }
  rank_guarded(0);
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  const double total_latency = net->node_time(0) - t0;

  ScenarioResult result;
  result.schedule_digest = net->finish();
  result.approach = approach;
  result.num_nodes = num_nodes;
  result.latency_ms = 1e3 * total_latency / config.num_queries;
  result.accuracy_pct = model_accuracy_pct(model_for_metrics, test);
  const double share = 1.0 / num_nodes;  // rank 0 holds 1/K of the weights
  result.usage = estimate_resources(
      config.device,
      static_cast<std::int64_t>(
          share * static_cast<double>(model_working_set_bytes(
                      model_for_metrics, test.sample_shape()))),
      rank0_compute.load() / total_latency);
  result.bytes_per_query =
      static_cast<double>(net->bytes_delivered() - bytes_before) /
      config.num_queries;
  result.messages_per_query =
      static_cast<double>(net->messages_delivered() - msgs_before) /
      config.num_queries;
  return result;
}

}  // namespace

ScenarioResult run_mpi_matrix(nn::MlpNet& model, const data::Dataset& test,
                              const ScenarioConfig& config, int num_nodes) {
  return run_mpi_generic(
      "MPI-Matrix", num_nodes, test, config, model,
      [&model](mpi::Communicator& comm, const net::ComputeHook& hook) {
        return [executor = std::make_shared<mpi::MpiMatrixMlp>(model, comm,
                                                               hook)](
                   const Tensor& x) { executor->infer(x); };
      });
}

ScenarioResult run_mpi_kernel(nn::ShakeShakeNet& model,
                              const data::Dataset& test,
                              const ScenarioConfig& config, int num_nodes) {
  return run_mpi_generic(
      "MPI-Kernel", num_nodes, test, config, model,
      [&model](mpi::Communicator& comm, const net::ComputeHook& hook) {
        return [executor = std::make_shared<mpi::MpiKernelShakeShake>(
                    model, comm, hook)](const Tensor& x) {
          executor->infer(x);
        };
      });
}

ScenarioResult run_mpi_branch(nn::ShakeShakeNet& model,
                              const data::Dataset& test,
                              const ScenarioConfig& config) {
  return run_mpi_generic(
      "MPI-Branch", 2, test, config, model,
      [&model](mpi::Communicator& comm, const net::ComputeHook& hook) {
        return [executor = std::make_shared<mpi::MpiBranchShakeShake>(
                    model, comm, hook)](const Tensor& x) {
          executor->infer(x);
        };
      });
}

ScenarioResult run_sg_moe(moe::SgMoe& model, const data::Dataset& test,
                          const ScenarioConfig& config) {
  const int k = model.num_experts();
  obs::Tracer::instance().begin_epoch("sg-moe");
  auto net = make_sim_net(config.scheduler, k, config.link,
                          net_options(config));

  std::atomic<double> master_compute{0.0};
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<net::CollaborativeWorker>> workers;
  for (int i = 1; i < k; ++i) {
    workers.push_back(std::make_unique<net::CollaborativeWorker>(
        model.expert(i), net->channel(i, 0)));
    workers.back()->set_compute_hook(
        make_hook(*net, i, config.device, nullptr));
    workers.back()->set_trace_node(i);
    threads.push_back(
        spawn_worker(*net, i, [w = workers.back().get()] { w->serve(); }));
  }

  std::vector<net::Channel*> worker_channels;
  for (int i = 1; i < k; ++i) {
    worker_channels.push_back(&net->channel(0, i));
  }
  moe::MoeMaster master(model, worker_channels);
  master.set_compute_hook(make_hook(*net, 0, config.device, &master_compute));
  master.set_flow_trace(true);  // fault-free: flows always pair (see above)

  SimNet* netp = net.get();
  obs::TraceTrack track(0, [netp] { return netp->node_time(0); }, "master");
  const auto queries = sample_queries(test, config.num_queries, config.seed);
  double total_latency = 0.0;
  const std::int64_t bytes_before = net->bytes_delivered();
  const std::int64_t msgs_before = net->messages_delivered();
  try {
    for (int row : queries) {
      const double t0 = net->node_time(0);
      master.infer(query_tensor(test, row));
      total_latency += net->node_time(0) - t0;
    }
  } catch (...) {
    net->close_all();
    net->retire(0);
    for (auto& t : threads) t.join();
    throw;
  }
  const std::int64_t bytes_used = net->bytes_delivered() - bytes_before;
  const std::int64_t msgs_used = net->messages_delivered() - msgs_before;
  master.shutdown();
  net->retire(0);
  for (auto& t : threads) t.join();

  ScenarioResult result;
  result.schedule_digest = net->finish();
  result.approach = "SG-MoE";
  result.num_nodes = k;
  result.latency_ms = 1e3 * total_latency / config.num_queries;
  result.accuracy_pct = 100.0 * model.evaluate_accuracy(test);
  result.usage = estimate_resources(
      config.device,
      model_working_set_bytes(model.expert(0), test.sample_shape()),
      master_compute.load() / total_latency);
  result.bytes_per_query = static_cast<double>(bytes_used) / config.num_queries;
  result.messages_per_query =
      static_cast<double>(msgs_used) / config.num_queries;
  return result;
}

}  // namespace teamnet::sim
