// Plain-text table printer used by the benchmark harness to emit rows in the
// same layout as the paper's tables (metric rows × approach columns).
#pragma once

#include <string>
#include <vector>

namespace teamnet {

/// Accumulates cells and renders an aligned ASCII table.
///
///   Table t({"", "Baseline", "TeamNet"});
///   t.add_row({"Accuracy (%)", "98.8", "98.7"});
///   std::cout << t.to_string();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with `digits` decimals (helper for numeric cells).
  static std::string num(double value, int digits = 1);

  std::string to_string() const;

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace teamnet
