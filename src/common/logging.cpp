#include "common/logging.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/annotations.hpp"

namespace teamnet::log {

bool parse_level(const std::string& name, Level* out) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (lower == "debug") {
    *out = Level::Debug;
  } else if (lower == "info") {
    *out = Level::Info;
  } else if (lower == "warn" || lower == "warning") {
    *out = Level::Warn;
  } else if (lower == "error") {
    *out = Level::Error;
  } else if (lower == "off" || lower == "none") {
    *out = Level::Off;
  } else {
    return false;
  }
  return true;
}

namespace {

Level initial_threshold() {
  Level level = Level::Warn;
  if (const char* env = std::getenv("TEAMNET_LOG_LEVEL")) {
    if (!parse_level(env, &level)) {
      // Can't log through the not-yet-initialized logger; a bad value
      // falling back to the default is visible enough via this line.
      std::fprintf(stderr,
                   "[   0.000s WARN ] ignoring unrecognized "
                   "TEAMNET_LOG_LEVEL=\"%s\" (want debug|info|warn|error|off)\n",
                   env);
      level = Level::Warn;
    }
  }
  return level;
}

}  // namespace

std::atomic<Level>& threshold() {
  static std::atomic<Level> level{initial_threshold()};
  return level;
}

void set_level(Level level) { threshold().store(level, std::memory_order_relaxed); }

bool enabled(Level level) {
  return static_cast<int>(level) >=
         static_cast<int>(threshold().load(std::memory_order_relaxed));
}

namespace {

const char* level_tag(Level level) {
  switch (level) {
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO ";
    case Level::Warn: return "WARN ";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF  ";
  }
  return "?????";
}

/// The one log sink. Every level writes through emit() under `mutex` — the
/// stream pointer and the write itself share a single critical section, so
/// set_sink() can never race a half-written line. Leaf lock: nothing else
/// is acquired while it is held.
struct Sink {
  Mutex mutex;
  std::FILE* stream TN_GUARDED_BY(mutex) = nullptr;  ///< nullptr = stderr
};

Sink& sink() {
  static Sink s;
  return s;
}

}  // namespace

void Fields::append_key(const char* key) {
  if (!body_.empty()) body_ += ' ';
  body_ += key;
  body_ += '=';
}

Fields& Fields::kv(const char* key, const std::string& value) {
  append_key(key);
  const bool needs_quotes =
      value.empty() ||
      value.find_first_of(" \t\n=\"") != std::string::npos;
  if (needs_quotes) {
    body_ += '"';
    for (char c : value) {
      if (c == '"' || c == '\\') body_ += '\\';
      body_ += c;
    }
    body_ += '"';
  } else {
    body_ += value;
  }
  return *this;
}

Fields& Fields::kv(const char* key, long long value) {
  append_key(key);
  body_ += std::to_string(value);
  return *this;
}

Fields& Fields::kv(const char* key, unsigned long long value) {
  append_key(key);
  body_ += std::to_string(value);
  return *this;
}

Fields& Fields::kv(const char* key, double value) {
  append_key(key);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  body_ += buf;
  return *this;
}

Fields& Fields::kv(const char* key, bool value) {
  append_key(key);
  body_ += value ? "true" : "false";
  return *this;
}

void set_sink(std::FILE* stream) {
  Sink& s = sink();
  MutexLock lock(s.mutex);
  s.stream = stream;
}

namespace detail {

void emit(Level level, const std::string& message) {
  using clock = std::chrono::steady_clock;
  static const auto start = clock::now();
  const double elapsed =
      std::chrono::duration<double>(clock::now() - start).count();
  Sink& s = sink();
  MutexLock lock(s.mutex);
  std::FILE* out = s.stream != nullptr ? s.stream : stderr;
  std::fprintf(out, "[%8.3fs %s] %s\n", elapsed, level_tag(level),
               message.c_str());
}

}  // namespace detail
}  // namespace teamnet::log
