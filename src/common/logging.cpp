#include "common/logging.hpp"

#include <chrono>
#include <cstdio>
#include <mutex>

namespace teamnet::log {

std::atomic<Level>& threshold() {
  static std::atomic<Level> level{Level::Warn};
  return level;
}

void set_level(Level level) { threshold().store(level, std::memory_order_relaxed); }

bool enabled(Level level) {
  return static_cast<int>(level) >=
         static_cast<int>(threshold().load(std::memory_order_relaxed));
}

namespace detail {

namespace {
const char* level_tag(Level level) {
  switch (level) {
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO ";
    case Level::Warn: return "WARN ";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF  ";
  }
  return "?????";
}

std::mutex& emit_mutex() {
  static std::mutex m;
  return m;
}
}  // namespace

void emit(Level level, const std::string& message) {
  using clock = std::chrono::steady_clock;
  static const auto start = clock::now();
  const double elapsed =
      std::chrono::duration<double>(clock::now() - start).count();
  std::lock_guard<std::mutex> lock(emit_mutex());
  std::fprintf(stderr, "[%8.3fs %s] %s\n", elapsed, level_tag(level),
               message.c_str());
}

}  // namespace detail
}  // namespace teamnet::log
