#include "common/logging.hpp"

#include <chrono>
#include <cstdio>

#include "common/annotations.hpp"

namespace teamnet::log {

std::atomic<Level>& threshold() {
  static std::atomic<Level> level{Level::Warn};
  return level;
}

void set_level(Level level) { threshold().store(level, std::memory_order_relaxed); }

bool enabled(Level level) {
  return static_cast<int>(level) >=
         static_cast<int>(threshold().load(std::memory_order_relaxed));
}

namespace {

const char* level_tag(Level level) {
  switch (level) {
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO ";
    case Level::Warn: return "WARN ";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF  ";
  }
  return "?????";
}

/// The one log sink. Every level writes through emit() under `mutex` — the
/// stream pointer and the write itself share a single critical section, so
/// set_sink() can never race a half-written line. Leaf lock: nothing else
/// is acquired while it is held.
struct Sink {
  Mutex mutex;
  std::FILE* stream TN_GUARDED_BY(mutex) = nullptr;  ///< nullptr = stderr
};

Sink& sink() {
  static Sink s;
  return s;
}

}  // namespace

void set_sink(std::FILE* stream) {
  Sink& s = sink();
  MutexLock lock(s.mutex);
  s.stream = stream;
}

namespace detail {

void emit(Level level, const std::string& message) {
  using clock = std::chrono::steady_clock;
  static const auto start = clock::now();
  const double elapsed =
      std::chrono::duration<double>(clock::now() - start).count();
  Sink& s = sink();
  MutexLock lock(s.mutex);
  std::FILE* out = s.stream != nullptr ? s.stream : stderr;
  std::fprintf(out, "[%8.3fs %s] %s\n", elapsed, level_tag(level),
               message.c_str());
}

}  // namespace detail
}  // namespace teamnet::log
