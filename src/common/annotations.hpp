// Clang thread-safety capability analysis, repo-wide.
//
// Every lock in TeamNet goes through the annotated wrappers below so that
// `-Wthread-safety -Wthread-safety-beta` (the TEAMNET_THREAD_SAFETY build,
// clang only) can prove lock discipline at compile time for ALL paths —
// TSan only sees the interleavings that actually execute. Under GCC the
// macros expand to nothing and the wrappers are zero-cost forwarding shims.
//
// Conventions:
//   * Fields protected by a mutex carry TN_GUARDED_BY(mutex_).
//   * Private helpers that assume the lock is held carry TN_REQUIRES(mutex_)
//     and are named `*_locked` (see DESIGN.md "Concurrency invariants").
//   * Condition waits use CondVar::wait / wait_until inside an explicit
//     `while (!predicate)` loop so the analysis sees the guarded predicate
//     re-checked under the lock — never a bare wait.
//   * Any TN_NO_THREAD_SAFETY_ANALYSIS escape hatch must sit next to a
//     written invariant explaining why the analysis cannot see the proof.
//
// tools/lint.py enforces the funnel: raw std::mutex / std::lock_guard /
// std::condition_variable are forbidden in src/** outside this header.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>  // lint:allow(raw-mutex) — the one place raw primitives live

#if defined(__clang__)
#define TN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TN_THREAD_ANNOTATION(x)  // GCC: capability analysis unavailable
#endif

#define TN_CAPABILITY(x) TN_THREAD_ANNOTATION(capability(x))
#define TN_SCOPED_CAPABILITY TN_THREAD_ANNOTATION(scoped_lockable)
#define TN_GUARDED_BY(x) TN_THREAD_ANNOTATION(guarded_by(x))
#define TN_PT_GUARDED_BY(x) TN_THREAD_ANNOTATION(pt_guarded_by(x))
#define TN_REQUIRES(...) \
  TN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define TN_ACQUIRE(...) \
  TN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define TN_RELEASE(...) \
  TN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TN_TRY_ACQUIRE(...) \
  TN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TN_EXCLUDES(...) TN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define TN_ACQUIRED_BEFORE(...) \
  TN_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define TN_ACQUIRED_AFTER(...) \
  TN_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define TN_RETURN_CAPABILITY(x) TN_THREAD_ANNOTATION(lock_returned(x))
#define TN_NO_THREAD_SAFETY_ANALYSIS \
  TN_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace teamnet {

/// Annotated exclusive mutex (absl-style). Prefer MutexLock over manual
/// lock()/unlock() pairs; the manual form exists for the rare split
/// acquire/release and keeps the capability bookkeeping explicit.
class TN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TN_ACQUIRE() { m_.lock(); }
  void unlock() TN_RELEASE() { m_.unlock(); }
  bool try_lock() TN_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  friend class MutexPairLock;
  std::mutex m_;  // lint:allow(raw-mutex)
};

/// RAII scoped acquisition of one Mutex.
class TN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) TN_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.m_.lock();
  }
  ~MutexLock() TN_RELEASE() { mutex_.m_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// RAII scoped acquisition of two Mutexes, deadlock-free (std::lock order).
/// Used by cross-instance operations (e.g. telemetry copy/assign) where a
/// fixed this-before-other order would deadlock on concurrent a=b; b=a.
class TN_SCOPED_CAPABILITY MutexPairLock {
 public:
  MutexPairLock(Mutex& a, Mutex& b) TN_ACQUIRE(a, b) : a_(a), b_(b) {
    std::lock(a_.m_, b_.m_);
  }
  ~MutexPairLock() TN_RELEASE() {
    a_.m_.unlock();
    b_.m_.unlock();
  }

  MutexPairLock(const MutexPairLock&) = delete;
  MutexPairLock& operator=(const MutexPairLock&) = delete;

 private:
  Mutex& a_;
  Mutex& b_;
};

/// Condition variable bound to the annotated Mutex. Waits require the
/// caller to hold the mutex (TN_REQUIRES), making the guarded-predicate
/// loop visible to the analysis at every call site.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken). Callers re-check their
  /// guarded predicate in a loop around this call.
  void wait(Mutex& mutex) TN_REQUIRES(mutex) {
    // The analysis cannot model handing the locked state to
    // std::condition_variable, so adopt the already-held native mutex and
    // release the unique_lock wrapper before it goes out of scope: the
    // caller still holds `mutex` on return, exactly as TN_REQUIRES states.
    std::unique_lock<std::mutex> native(mutex.m_, std::adopt_lock);  // lint:allow(raw-mutex)
    cv_.wait(native);
    native.release();
  }

  /// Blocks until notified or `deadline` passes. Returns false when the
  /// deadline passed without a notification (callers re-check the guarded
  /// predicate either way — a timeout can race a final notify).
  bool wait_until(Mutex& mutex,
                  std::chrono::steady_clock::time_point deadline)
      TN_REQUIRES(mutex) {
    std::unique_lock<std::mutex> native(mutex.m_, std::adopt_lock);  // lint:allow(raw-mutex)
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status == std::cv_status::no_timeout;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // lint:allow(raw-mutex)
};

}  // namespace teamnet
