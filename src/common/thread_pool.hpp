// Fixed-size thread pool used to run experts / simulated edge nodes in
// parallel. Kept intentionally small: submit() returns a std::future, and
// parallel_for partitions an index range across the workers.
//
// Lock hierarchy: the single `mutex_` guards the task queue and the stop
// flag; it is a leaf lock (no other TeamNet lock is ever acquired while it
// is held — submitted tasks run strictly outside the lock).
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "common/annotations.hpp"

namespace teamnet {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task and returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    // Build the type-erased wrapper before taking the lock: the
    // std::function construction allocates, and the queue mutex is on the
    // submission fast path (allocation-under-lock, tools/analyze.py).
    std::function<void()> wrapped = [task] { (*task)(); };
    {
      MutexLock lock(mutex_);
      queue_.push(std::move(wrapped));
    }
    cv_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [0, n) across the pool and blocks until done.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  std::queue<std::function<void()>> queue_ TN_GUARDED_BY(mutex_);
  bool stopping_ TN_GUARDED_BY(mutex_) = false;
};

}  // namespace teamnet
