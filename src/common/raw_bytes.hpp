// Checked byte-level (de)serialization primitives.
//
// Every raw byte copy between typed values and byte streams in TeamNet goes
// through these helpers (tools/lint.py rule `raw-cast` bans char-pointer
// reinterpret_casts elsewhere). They guarantee, at compile time, that only
// trivially copyable types ever cross a memcpy boundary, and at run time
// that reads never step past the end of a buffer or stream — a truncated or
// corrupt input surfaces as SerializationError, never as UB.
//
// Two flavors mirror the two buffer styles used in the tree:
//   * std::string + offset cursor   (wire messages, quantized snapshots)
//   * std::ostream / std::istream   (checkpoint files, tensor streams)
#pragma once

#include <cstddef>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <string>
#include <type_traits>

#include "common/error.hpp"

namespace teamnet {

namespace detail {

template <typename T>
inline constexpr bool is_raw_serializable_v =
    std::is_trivially_copyable_v<T> && !std::is_pointer_v<T>;

}  // namespace detail

/// Appends the object representation of `value` to `out`.
template <typename T>
void write_raw(std::string& out, const T& value) {
  static_assert(detail::is_raw_serializable_v<T>,
                "write_raw requires a trivially copyable non-pointer type");
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Appends `count` contiguous elements starting at `data` to `out`.
template <typename T>
void write_raw_array(std::string& out, const T* data, std::size_t count) {
  static_assert(detail::is_raw_serializable_v<T>,
                "write_raw_array requires a trivially copyable type");
  out.append(reinterpret_cast<const char*>(data), count * sizeof(T));
}

/// Reads one T from `in` at `offset`, advancing the cursor. Overflow-safe:
/// throws SerializationError when fewer than sizeof(T) bytes remain.
template <typename T>
T read_raw(const std::string& in, std::size_t& offset) {
  static_assert(detail::is_raw_serializable_v<T>,
                "read_raw requires a trivially copyable non-pointer type");
  if (offset > in.size() || in.size() - offset < sizeof(T)) {
    throw SerializationError("truncated buffer: need " +
                             std::to_string(sizeof(T)) + " bytes at offset " +
                             std::to_string(offset) + ", have " +
                             std::to_string(in.size()));
  }
  T value{};
  std::memcpy(&value, in.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

/// Reads `count` contiguous elements from `in` at `offset` into `data`.
template <typename T>
void read_raw_array(const std::string& in, std::size_t& offset, T* data,
                    std::size_t count) {
  static_assert(detail::is_raw_serializable_v<T>,
                "read_raw_array requires a trivially copyable type");
  const std::size_t bytes = count * sizeof(T);
  if (count > in.size() / sizeof(T) || offset > in.size() ||
      in.size() - offset < bytes) {
    throw SerializationError("truncated buffer: need " +
                             std::to_string(bytes) + " bytes at offset " +
                             std::to_string(offset) + ", have " +
                             std::to_string(in.size()));
  }
  std::memcpy(data, in.data() + offset, bytes);
  offset += bytes;
}

/// Writes the object representation of `value` to `os`.
template <typename T>
void write_raw(std::ostream& os, const T& value) {
  static_assert(detail::is_raw_serializable_v<T>,
                "write_raw requires a trivially copyable non-pointer type");
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Writes `count` contiguous elements starting at `data` to `os`.
template <typename T>
void write_raw_array(std::ostream& os, const T* data, std::size_t count) {
  static_assert(detail::is_raw_serializable_v<T>,
                "write_raw_array requires a trivially copyable type");
  os.write(reinterpret_cast<const char*>(data),
           static_cast<std::streamsize>(count * sizeof(T)));
}

/// Reads one T from `is`; throws SerializationError on short reads.
template <typename T>
T read_raw(std::istream& is) {
  static_assert(detail::is_raw_serializable_v<T>,
                "read_raw requires a trivially copyable non-pointer type");
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw SerializationError("truncated stream");
  return value;
}

/// Reads `count` contiguous elements from `is` into `data`.
template <typename T>
void read_raw_array(std::istream& is, T* data, std::size_t count) {
  static_assert(detail::is_raw_serializable_v<T>,
                "read_raw_array requires a trivially copyable type");
  is.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!is) throw SerializationError("truncated stream");
}

/// Converts between integer types, throwing SerializationError when the
/// value does not fit — the wire format stores counts as u32, and silent
/// narrowing of an oversized container is exactly the bug class the
/// cppcoreguidelines narrowing checks exist for.
template <typename To, typename From>
To checked_narrow(From value) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                "checked_narrow converts between integer types");
  const To narrowed = static_cast<To>(value);
  if (static_cast<From>(narrowed) != value ||
      ((value < From{}) != (narrowed < To{}))) {
    throw SerializationError("value out of range for wire format: " +
                             std::to_string(value));
  }
  return narrowed;
}

}  // namespace teamnet
