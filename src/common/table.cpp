#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace teamnet {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  TEAMNET_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  TEAMNET_CHECK_MSG(cells.size() == header_.size(),
                    "row has " << cells.size() << " cells, header has "
                               << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  auto emit_rule = [&] {
    os << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << "|";
    }
    os << '\n';
  };

  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace teamnet
