// Deterministic random number generation.
//
// Every stochastic component in the repository (weight init, dataset
// synthesis, gate latent vectors, shake-shake mixing, noisy gating) draws
// from an explicitly seeded `Rng` so experiments are reproducible
// run-to-run. `Rng::fork` derives an independent child stream, which lets a
// parent seed fan out to per-expert / per-worker streams without
// correlation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace teamnet {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed'c0de'1234'5678ULL) : engine_(seed) {}

  /// Uniform float in [lo, hi).
  float uniform(float lo = 0.0f, float hi = 1.0f) {
    std::uniform_real_distribution<float> dist(lo, hi);
    return dist(engine_);
  }

  /// Standard normal (or scaled/shifted) float.
  float normal(float mean = 0.0f, float stddev = 1.0f) {
    std::normal_distribution<float> dist(mean, stddev);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int randint(int lo, int hi) {
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(engine_);
  }

  /// Bernoulli draw with probability `p` of true.
  bool bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    std::shuffle(values.begin(), values.end(), engine_);
  }

  /// A permutation of 0..n-1.
  std::vector<int> permutation(int n) {
    std::vector<int> perm(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
    shuffle(perm);
    return perm;
  }

  /// Derives an independent child stream. Mixing with splitmix64 keeps
  /// sibling forks decorrelated even for consecutive salts.
  Rng fork(std::uint64_t salt) {
    std::uint64_t x = engine_() ^ (salt + 0x9e3779b97f4a7c15ULL);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return Rng(x);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace teamnet
