// Error handling primitives shared by every TeamNet module.
//
// All recoverable failures are reported through the `teamnet::Error`
// exception hierarchy; invariant violations use the TEAMNET_CHECK family of
// macros which throw `teamnet::InvariantError` with file/line context.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace teamnet {

/// Base class for all exceptions thrown by the TeamNet libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a TEAMNET_CHECK* invariant fails.
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what) : Error(what) {}
};

/// Thrown on malformed user input (bad shapes, bad configuration values).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown by the networking layer (socket failures, protocol violations).
class NetworkError : public Error {
 public:
  explicit NetworkError(const std::string& what) : Error(what) {}
};

/// Thrown by (de)serialization when a stream is malformed or truncated.
class SerializationError : public Error {
 public:
  explicit SerializationError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace detail
}  // namespace teamnet

/// Throws teamnet::InvariantError when `cond` does not hold.
#define TEAMNET_CHECK(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::teamnet::detail::throw_check_failure(#cond, __FILE__, __LINE__, ""); \
  } while (false)

/// Like TEAMNET_CHECK but appends a streamed message, e.g.
///   TEAMNET_CHECK_MSG(k > 0, "num_experts=" << k);
#define TEAMNET_CHECK_MSG(cond, stream_expr)                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream teamnet_check_os_;                               \
      teamnet_check_os_ << stream_expr;                                   \
      ::teamnet::detail::throw_check_failure(#cond, __FILE__, __LINE__,   \
                                             teamnet_check_os_.str());    \
    }                                                                     \
  } while (false)
