// Minimal leveled logger. Output goes to stderr so bench tables on stdout
// stay machine-parsable. Level is a process-wide atomic; default Warn keeps
// tests quiet, benches raise it to Info for progress reporting.
#pragma once

#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>

namespace teamnet::log {

enum class Level : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Returns the mutable process-wide minimum level.
std::atomic<Level>& threshold();

/// Sets the process-wide minimum level.
void set_level(Level level);

/// True when messages at `level` are currently emitted.
bool enabled(Level level);

/// Redirects all subsequent log output (every level — there is one sink,
/// guarded by one mutex) to `stream`; nullptr restores stderr. The caller
/// keeps ownership and must not close the stream while logging may occur.
void set_sink(std::FILE* stream);

namespace detail {
void emit(Level level, const std::string& message);
}  // namespace detail

}  // namespace teamnet::log

#define TEAMNET_LOG(level, stream_expr)                                   \
  do {                                                                    \
    if (::teamnet::log::enabled(level)) {                                 \
      std::ostringstream teamnet_log_os_;                                 \
      teamnet_log_os_ << stream_expr;                                     \
      ::teamnet::log::detail::emit(level, teamnet_log_os_.str());         \
    }                                                                     \
  } while (false)

#define LOG_DEBUG(stream_expr) TEAMNET_LOG(::teamnet::log::Level::Debug, stream_expr)
#define LOG_INFO(stream_expr) TEAMNET_LOG(::teamnet::log::Level::Info, stream_expr)
#define LOG_WARN(stream_expr) TEAMNET_LOG(::teamnet::log::Level::Warn, stream_expr)
#define LOG_ERROR(stream_expr) TEAMNET_LOG(::teamnet::log::Level::Error, stream_expr)
