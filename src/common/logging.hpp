// Minimal leveled logger. Output goes to stderr so bench tables on stdout
// stay machine-parsable. Level is a process-wide atomic; default Warn keeps
// tests quiet, benches raise it to Info for progress reporting, and the
// TEAMNET_LOG_LEVEL environment variable (debug|info|warn|error|off)
// overrides the initial threshold without touching code.
#pragma once

#include <atomic>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <string>

namespace teamnet::log {

enum class Level : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Returns the mutable process-wide minimum level. First call seeds it
/// from TEAMNET_LOG_LEVEL when set to a recognized name, else Warn.
std::atomic<Level>& threshold();

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
/// Returns false (leaving `out` untouched) on anything else.
bool parse_level(const std::string& name, Level* out);

/// Sets the process-wide minimum level.
void set_level(Level level);

/// True when messages at `level` are currently emitted.
bool enabled(Level level);

/// Redirects all subsequent log output (every level — there is one sink,
/// guarded by one mutex) to `stream`; nullptr restores stderr. The caller
/// keeps ownership and must not close the stream while logging may occur.
void set_sink(std::FILE* stream);

/// Structured key=value fields for machine-grepable log lines. Streams as
/// space-separated `key=value` pairs in insertion order:
///
///   LOG_WARN("trace buffer saturated "
///            << log::Fields().kv("track", id).kv("dropped", n));
///
/// String values containing whitespace or '=' are double-quoted so the
/// line stays unambiguous to split.
class Fields {
 public:
  Fields& kv(const char* key, const std::string& value);
  Fields& kv(const char* key, const char* value) {
    return kv(key, std::string(value));
  }
  Fields& kv(const char* key, long long value);
  Fields& kv(const char* key, unsigned long long value);
  Fields& kv(const char* key, int value) {
    return kv(key, static_cast<long long>(value));
  }
  Fields& kv(const char* key, long value) {
    return kv(key, static_cast<long long>(value));
  }
  Fields& kv(const char* key, unsigned long value) {
    return kv(key, static_cast<unsigned long long>(value));
  }
  Fields& kv(const char* key, double value);
  Fields& kv(const char* key, bool value);

  const std::string& str() const { return body_; }
  friend std::ostream& operator<<(std::ostream& os, const Fields& fields) {
    return os << fields.body_;
  }

 private:
  void append_key(const char* key);
  std::string body_;
};

namespace detail {
void emit(Level level, const std::string& message);
}  // namespace detail

}  // namespace teamnet::log

#define TEAMNET_LOG(level, stream_expr)                                   \
  do {                                                                    \
    if (::teamnet::log::enabled(level)) {                                 \
      std::ostringstream teamnet_log_os_;                                 \
      teamnet_log_os_ << stream_expr;                                     \
      ::teamnet::log::detail::emit(level, teamnet_log_os_.str());         \
    }                                                                     \
  } while (false)

#define LOG_DEBUG(stream_expr) TEAMNET_LOG(::teamnet::log::Level::Debug, stream_expr)
#define LOG_INFO(stream_expr) TEAMNET_LOG(::teamnet::log::Level::Info, stream_expr)
#define LOG_WARN(stream_expr) TEAMNET_LOG(::teamnet::log::Level::Warn, stream_expr)
#define LOG_ERROR(stream_expr) TEAMNET_LOG(::teamnet::log::Level::Error, stream_expr)
