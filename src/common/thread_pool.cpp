#include "common/thread_pool.hpp"

#include <algorithm>

namespace teamnet {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // One contiguous block per worker, not one task per item: a million-item
  // loop costs `size()` queue operations and futures instead of a million.
  const std::size_t num_blocks = std::min(n, workers_.size());
  const std::size_t base = n / num_blocks;
  const std::size_t extra = n % num_blocks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_blocks);
  std::size_t begin = 0;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::size_t end = begin + base + (b < extra ? 1 : 0);
    futures.push_back(submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
    begin = end;
  }
  // Wait for every block before surfacing the first failure: bailing on the
  // first get() would destroy futures whose tasks are still running against
  // the caller's `fn` reference.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace teamnet
