#include "core/gate.hpp"

#include <cmath>

#include "common/error.hpp"

namespace teamnet::core {

std::vector<int> gate_assign(const Tensor& entropy,
                             const std::vector<float>& delta) {
  TEAMNET_CHECK(entropy.rank() == 2);
  const std::int64_t n = entropy.dim(0), k = entropy.dim(1);
  TEAMNET_CHECK(static_cast<std::int64_t>(delta.size()) == k);
  std::vector<int> assignment(static_cast<std::size_t>(n));
  for (std::int64_t r = 0; r < n; ++r) {
    const float* row = entropy.data() + r * k;
    int best = 0;
    float best_score = delta[0] * row[0];
    for (std::int64_t i = 1; i < k; ++i) {
      const float score = delta[static_cast<std::size_t>(i)] * row[i];
      if (score < best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    assignment[static_cast<std::size_t>(r)] = best;
  }
  return assignment;
}

std::vector<int> argmin_gate(const Tensor& entropy) {
  return gate_assign(entropy,
                     std::vector<float>(static_cast<std::size_t>(entropy.dim(1)),
                                        1.0f));
}

std::vector<float> assignment_proportions(const std::vector<int>& assignment,
                                          int num_experts) {
  TEAMNET_CHECK(num_experts > 0);
  std::vector<float> gamma(static_cast<std::size_t>(num_experts), 0.0f);
  for (int a : assignment) {
    TEAMNET_CHECK(a >= 0 && a < num_experts);
    gamma[static_cast<std::size_t>(a)] += 1.0f;
  }
  if (!assignment.empty()) {
    for (auto& g : gamma) g /= static_cast<float>(assignment.size());
  }
  return gamma;
}

std::vector<float> controller_target(const std::vector<float>& gamma,
                                     float gain) {
  return weighted_controller_target(
      gamma, std::vector<float>(gamma.size(), 1.0f), gain);
}

std::vector<float> weighted_controller_target(const std::vector<float>& gamma,
                                              const std::vector<float>& weights,
                                              float gain) {
  TEAMNET_CHECK(!gamma.empty() && gamma.size() == weights.size());
  TEAMNET_CHECK(gain > 0.0f && gain < 1.0f);
  float weight_sum = 0.0f;
  for (float w : weights) {
    TEAMNET_CHECK_MSG(w > 0.0f, "capacity weights must be positive");
    weight_sum += w;
  }

  std::vector<float> target(gamma.size());
  float positive_sum = 0.0f;
  for (std::size_t i = 0; i < gamma.size(); ++i) {
    const float set_point = weights[i] / weight_sum;
    // Eq. (4)'s raw target can go negative under extreme bias; a proportion
    // below zero is unachievable, so clamp and renormalize (the clamped
    // mass flows to the starved experts, preserving sum = 1).
    target[i] = std::max(0.0f, set_point - gain * (gamma[i] - set_point));
    positive_sum += target[i];
  }
  if (positive_sum > 0.0f) {
    for (auto& t : target) t /= positive_sum;
  }
  return target;
}

float gate_objective(const std::vector<float>& gamma_bar,
                     const std::vector<float>& target) {
  TEAMNET_CHECK(gamma_bar.size() == target.size() && !target.empty());
  float acc = 0.0f;
  for (std::size_t i = 0; i < target.size(); ++i) {
    acc += std::abs(gamma_bar[i] - target[i]);
  }
  return acc / static_cast<float>(target.size());
}

std::vector<std::vector<int>> partition_by_assignment(
    const std::vector<int>& assignment, int num_experts) {
  std::vector<std::vector<int>> parts(static_cast<std::size_t>(num_experts));
  for (std::size_t r = 0; r < assignment.size(); ++r) {
    const int a = assignment[r];
    TEAMNET_CHECK(a >= 0 && a < num_experts);
    parts[static_cast<std::size_t>(a)].push_back(static_cast<int>(r));
  }
  return parts;
}

}  // namespace teamnet::core
