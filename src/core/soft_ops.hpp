// Differentiable relaxations used by the gate trainer (paper Eqs. 5-7).
#pragma once

#include "tensor/autograd.hpp"

namespace teamnet::core {

/// Soft argmin (Eq. 5): for each row of `scores` [n, K],
///   soft_argmin(x) = sum_i softmax_j(-b * x_j) * i          -> [n, 1]
/// `b` is a positive scalar Var (shape [1]) so the meta-estimator can train
/// it; as b -> inf the output approaches the hard argmin index.
ag::Var soft_argmin_rows(const ag::Var& scores, const ag::Var& b);

/// Convenience overload with a fixed temperature.
ag::Var soft_argmin_rows(const ag::Var& scores, float b);

/// Differentiable Kronecker-delta approximation (Eq. 7):
///   1[g = i]  ~  tanh(c * relu(0.5 - |g - i|))
/// applied elementwise to `gbar` [n, 1] for expert index `i`.
ag::Var soft_indicator(const ag::Var& gbar, int i, float c = 10.0f);

/// Mean distance of each row of `gbar` to its nearest integer (the
/// meta-estimator's rounding term in Eq. 6). The rounding target is treated
/// as a constant, so gradients flow only through gbar.
ag::Var mean_rounding_distance(const ag::Var& gbar);

}  // namespace teamnet::core
