// TeamNet training (Algorithm 1) and collaborative inference (paper §V).
//
// Training: per batch, probe every expert's predictive entropy, run the
// dynamic gate to partition the batch, and let each expert learn only its
// partition. Inference: every expert predicts; the output of the expert
// with the least predictive entropy wins (Figure 4's argmin gate).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/expert_trainer.hpp"
#include "core/gate_policy.hpp"
#include "core/telemetry.hpp"
#include "data/dataset.hpp"
#include "nn/module.hpp"
#include "nn/schedule.hpp"

namespace teamnet::core {

struct TeamNetConfig {
  int num_experts = 2;         ///< K
  int epochs = 3;              ///< r in Algorithm 1
  std::int64_t batch_size = 64;
  GateKind gate_kind = GateKind::Learned;
  GateTrainerConfig gate;
  nn::SgdConfig sgd;
  /// Learning-rate schedule applied to the expert optimizers at the start
  /// of each epoch (defaults to a constant rate).
  nn::LrSchedule lr_schedule = nn::constant_schedule();
  std::uint64_t seed = 7;
};

/// Builds expert `index` (0-based). Experts may differ per index but the
/// paper uses identical downsized architectures.
using ExpertFactory = std::function<nn::ModulePtr(int index, Rng& rng)>;

/// How the ensemble combines expert outputs at inference time. ArgMin is
/// the paper's gate; MajorityVote is §V's discussed-and-rejected
/// alternative, kept for the ablation bench.
enum class SelectionRule { ArgMinEntropy, MajorityVote };

class TeamNetEnsemble {
 public:
  explicit TeamNetEnsemble(std::vector<nn::ModulePtr> experts);

  struct InferenceResult {
    Tensor probs;                 ///< [n, C] winning expert's probabilities
    std::vector<int> predictions; ///< argmax class per sample
    std::vector<int> chosen;      ///< winning expert per sample
    Tensor entropy;               ///< [n, K] every expert's uncertainty
  };

  InferenceResult infer(const Tensor& x,
                        SelectionRule rule = SelectionRule::ArgMinEntropy);

  /// Classification accuracy over a dataset.
  double evaluate_accuracy(const data::Dataset& dataset,
                           SelectionRule rule = SelectionRule::ArgMinEntropy);

  int num_experts() const { return static_cast<int>(experts_.size()); }
  nn::Module& expert(int i) { return *experts_.at(static_cast<std::size_t>(i)); }
  /// Transfers ownership of the experts out (deploying them to edge nodes).
  std::vector<nn::ModulePtr> release_experts() { return std::move(experts_); }

 private:
  std::vector<nn::ModulePtr> experts_;
};

class TeamNetTrainer {
 public:
  TeamNetTrainer(const TeamNetConfig& config, ExpertFactory factory);

  /// Runs Algorithm 1 on `train_data` and returns the trained ensemble.
  TeamNetEnsemble train(const data::Dataset& train_data);

  /// Gate convergence telemetry from the last train() call (Figures 6, 8).
  const ConvergenceTelemetry& telemetry() const { return telemetry_; }

  const TeamNetConfig& config() const { return config_; }

 private:
  TeamNetConfig config_;
  ExpertFactory factory_;
  ConvergenceTelemetry telemetry_;
};

}  // namespace teamnet::core
