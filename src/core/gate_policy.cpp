#include "core/gate_policy.hpp"

#include <cmath>

namespace teamnet::core {

std::string to_string(GateKind kind) {
  switch (kind) {
    case GateKind::Learned: return "learned";
    case GateKind::ArgMin: return "argmin";
    case GateKind::Proportional: return "proportional";
    case GateKind::Random: return "random";
  }
  return "?";
}

namespace {

class LearnedGate final : public GatePolicy {
 public:
  LearnedGate(int k, const GateTrainerConfig& config, Rng rng)
      : trainer_(k, config, rng) {}
  GateDecision decide(const Tensor& entropy) override {
    return trainer_.decide(entropy);
  }
  GateKind kind() const override { return GateKind::Learned; }

 private:
  GateTrainer trainer_;
};

class ArgMinGatePolicy final : public GatePolicy {
 public:
  explicit ArgMinGatePolicy(int k) : k_(k) {}
  GateDecision decide(const Tensor& entropy) override {
    GateDecision d;
    d.delta.assign(static_cast<std::size_t>(k_), 1.0f);
    d.assignment = argmin_gate(entropy);
    d.gamma = assignment_proportions(d.assignment, k_);
    d.gamma_bar = d.gamma;
    d.iterations = 0;
    return d;
  }
  GateKind kind() const override { return GateKind::ArgMin; }

 private:
  int k_;
};

/// Direct multiplicative P-controller on delta, no MLP: experts that drew
/// more than 1/K of recent batches get their entropies scaled up (handicap)
/// so they win fewer future samples.
class ProportionalGatePolicy final : public GatePolicy {
 public:
  ProportionalGatePolicy(int k, float gain)
      : k_(k), gain_(gain), delta_(static_cast<std::size_t>(k), 1.0f) {}

  GateDecision decide(const Tensor& entropy) override {
    GateDecision d;
    d.gamma = assignment_proportions(argmin_gate(entropy), k_);
    const float set_point = 1.0f / static_cast<float>(k_);
    // Closed loop: correct delta from the proportions ACHIEVED under the
    // current delta, so the handicap settles instead of winding up.
    const auto achieved =
        assignment_proportions(gate_assign(entropy, delta_), k_);
    for (int i = 0; i < k_; ++i) {
      auto& delta = delta_[static_cast<std::size_t>(i)];
      delta *= std::exp(gain_ * (achieved[static_cast<std::size_t>(i)] -
                                 set_point));
      delta = std::clamp(delta, 0.1f, 10.0f);
    }
    d.delta = delta_;
    d.assignment = gate_assign(entropy, delta_);
    d.gamma_bar = assignment_proportions(d.assignment, k_);
    d.objective = gate_objective(d.gamma_bar, controller_target(d.gamma, gain_));
    d.iterations = 1;
    return d;
  }
  GateKind kind() const override { return GateKind::Proportional; }

 private:
  int k_;
  float gain_;
  std::vector<float> delta_;
};

class RandomGatePolicy final : public GatePolicy {
 public:
  RandomGatePolicy(int k, Rng rng) : k_(k), rng_(rng) {}
  GateDecision decide(const Tensor& entropy) override {
    GateDecision d;
    d.delta.assign(static_cast<std::size_t>(k_), 1.0f);
    const std::int64_t n = entropy.dim(0);
    d.assignment.resize(static_cast<std::size_t>(n));
    for (auto& a : d.assignment) a = rng_.randint(0, k_ - 1);
    d.gamma = assignment_proportions(argmin_gate(entropy), k_);
    d.gamma_bar = assignment_proportions(d.assignment, k_);
    d.iterations = 0;
    return d;
  }
  GateKind kind() const override { return GateKind::Random; }

 private:
  int k_;
  Rng rng_;
};

}  // namespace

std::unique_ptr<GatePolicy> make_gate_policy(GateKind kind, int num_experts,
                                             const GateTrainerConfig& config,
                                             Rng rng) {
  switch (kind) {
    case GateKind::Learned:
      return std::make_unique<LearnedGate>(num_experts, config, rng);
    case GateKind::ArgMin:
      return std::make_unique<ArgMinGatePolicy>(num_experts);
    case GateKind::Proportional:
      return std::make_unique<ProportionalGatePolicy>(num_experts,
                                                      config.gain_a);
    case GateKind::Random:
      return std::make_unique<RandomGatePolicy>(num_experts, rng);
  }
  throw InvalidArgument("unknown gate kind");
}

}  // namespace teamnet::core
