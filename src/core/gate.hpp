// Hard gate math (paper Eqs. 1-3): assignments, proportions and the bias
// measure. The differentiable machinery lives in gate_trainer.hpp; these
// helpers are the ground truth the relaxations approximate.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace teamnet::core {

/// G-bar(x, delta) = argmin_i delta_i * H[x, i] for each row of `entropy`
/// [n, K]; with delta = 1 this is the plain argmin gate G(x).
std::vector<int> gate_assign(const Tensor& entropy,
                             const std::vector<float>& delta);

/// Plain argmin gate (delta = 1).
std::vector<int> argmin_gate(const Tensor& entropy);

/// gamma_i = |{x : assign(x) = i}| / n (Eqs. 2-3).
std::vector<float> assignment_proportions(const std::vector<int>& assignment,
                                          int num_experts);

/// Controller target (Eq. 4): t_i = 1/K - a * (gamma_i - 1/K).
/// Targets are clamped to >= 0 and renormalized (an unachievable negative
/// proportion would stall the controller under extreme bias).
std::vector<float> controller_target(const std::vector<float>& gamma, float gain);

/// Generalized controller target (the paper's §VII future-work direction):
/// each expert i gets set point w_i instead of 1/K, so heterogeneous edge
/// devices can be assigned data in proportion to their capacity:
///   t_i = w_i - a * (gamma_i - w_i), clamped and renormalized.
/// `weights` must be positive; they are normalized to sum to 1.
std::vector<float> weighted_controller_target(const std::vector<float>& gamma,
                                              const std::vector<float>& weights,
                                              float gain);

/// Objective J (Algorithm 2 line 10): mean_i |gamma_bar_i - target_i|.
float gate_objective(const std::vector<float>& gamma_bar,
                     const std::vector<float>& target);

/// Groups sample indices by expert: result[i] lists batch rows assigned to
/// expert i (Algorithm 3's beta_i).
std::vector<std::vector<int>> partition_by_assignment(
    const std::vector<int>& assignment, int num_experts);

}  // namespace teamnet::core
