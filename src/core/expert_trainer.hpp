// Algorithm 3 ("Training Experts"): each expert receives only the batch
// rows the gate assigned to it and takes one cross-entropy SGD step with
// gradient-norm normalization.
#pragma once

#include <memory>
#include <vector>

#include "data/dataset.hpp"
#include "nn/module.hpp"
#include "nn/optim.hpp"

namespace teamnet::core {

class ExpertTrainer {
 public:
  /// Non-owning view of the experts; one SGD optimizer is created per
  /// expert and persists across batches.
  ExpertTrainer(std::vector<nn::Module*> experts, const nn::SgdConfig& sgd);

  /// One Algorithm-3 step. `assignment[r]` names the expert that learns
  /// batch row r. Returns the per-expert mean loss (NaN-free: experts with
  /// an empty partition report 0 and take no step).
  std::vector<float> train_on_batch(const Tensor& x,
                                    const std::vector<int>& labels,
                                    const std::vector<int>& assignment);

  int num_experts() const { return static_cast<int>(experts_.size()); }

  /// Applies a learning-rate multiplier to every expert's optimizer
  /// (driven by TeamNetConfig::lr_schedule between epochs).
  void set_lr_multiplier(float multiplier);

 private:
  std::vector<nn::Module*> experts_;
  std::vector<std::unique_ptr<nn::Sgd>> optimizers_;
};

}  // namespace teamnet::core
