// Predictive entropy — TeamNet's uncertainty measure (paper §IV-A).
#pragma once

#include <vector>

#include "nn/module.hpp"
#include "tensor/tensor.hpp"

namespace teamnet::core {

/// Row-wise Shannon entropy of a probability matrix [n, C] -> [n].
/// H(y|x) = -sum_c p_c log p_c, with p log p := 0 at p = 0.
Tensor predictive_entropy(const Tensor& probs);

/// Softmax-then-entropy of raw logits [n, C] -> [n].
Tensor entropy_from_logits(const Tensor& logits);

/// Entropy matrix H[x, i] = H(y-hat | x, theta_i) for a batch x and K
/// experts (Algorithm 1 line 6). Experts are temporarily switched to eval
/// mode so the probe does not perturb batch-norm running statistics.
Tensor entropy_matrix(const std::vector<nn::Module*>& experts, const Tensor& x);

/// Relative mean absolute deviation Delta of an entropy matrix [n, K]
/// (paper §IV-B): mean over x of D(x) / E(x), where E is the row mean and D
/// the row mean absolute deviation. E is clamped below to avoid division by
/// ~zero when every expert is maximally confident.
float relative_mean_abs_deviation(const Tensor& entropy);

}  // namespace teamnet::core
