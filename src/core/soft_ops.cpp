#include "core/soft_ops.hpp"

#include <cmath>

#include "common/error.hpp"

namespace teamnet::core {

ag::Var soft_argmin_rows(const ag::Var& scores, const ag::Var& b) {
  TEAMNET_CHECK(scores.value().rank() == 2);
  TEAMNET_CHECK(b.value().numel() == 1);
  const std::int64_t k = scores.value().dim(1);
  // softmax(-b * scores) row-wise, then expectation of the index.
  ag::Var scaled = ag::neg(ag::mul(scores, b));
  ag::Var weights = ag::softmax_rows(scaled);
  Tensor index_col({k, 1});
  for (std::int64_t i = 0; i < k; ++i) index_col[i] = static_cast<float>(i);
  return ag::matmul(weights, ag::constant(std::move(index_col)));
}

ag::Var soft_argmin_rows(const ag::Var& scores, float b) {
  return soft_argmin_rows(scores, ag::constant(Tensor::full({1}, b)));
}

ag::Var soft_indicator(const ag::Var& gbar, int i, float c) {
  // tanh(c * relu(0.5 - |gbar - i|))
  ag::Var shifted = ag::abs(ag::add_scalar(gbar, -static_cast<float>(i)));
  ag::Var ramped = ag::relu(ag::add_scalar(ag::neg(shifted), 0.5f));
  return ag::tanh(ag::mul_scalar(ramped, c));
}

ag::Var mean_rounding_distance(const ag::Var& gbar) {
  Tensor rounded(gbar.value().shape());
  for (std::int64_t i = 0; i < rounded.numel(); ++i) {
    rounded[i] = std::round(gbar.value()[i]);
  }
  return ag::mean_all(ag::abs(ag::sub(gbar, ag::constant(std::move(rounded)))));
}

}  // namespace teamnet::core
