#include "core/gate_trainer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/entropy.hpp"
#include "core/soft_ops.hpp"
#include "nn/layers.hpp"
#include "tensor/ops.hpp"

namespace teamnet::core {

GateTrainer::GateTrainer(int num_experts, const GateTrainerConfig& config,
                         Rng rng)
    : k_(num_experts), config_(config), rng_(rng) {
  TEAMNET_CHECK_MSG(num_experts >= 2, "gate needs at least 2 experts");
  TEAMNET_CHECK(config.gain_a > 0.0f && config.gain_a < 1.0f);
  TEAMNET_CHECK(config.latent_dim > 0 && config.hidden_dim > 0);
  TEAMNET_CHECK_MSG(config.capacity_weights.empty() ||
                        config.capacity_weights.size() ==
                            static_cast<std::size_t>(num_experts),
                    "capacity_weights must have one entry per expert");
  w_.emplace<nn::Linear>(config.latent_dim, config.hidden_dim, rng_);
  w_.emplace<nn::Tanh>();
  w_.emplace<nn::Linear>(config.hidden_dim, num_experts, rng_);
  nn::SgdConfig opt;
  opt.lr = config.lr;
  opt.momentum = 0.0f;
  opt.max_grad_norm = 5.0f;
  theta_opt_ = std::make_unique<nn::Sgd>(w_.parameters(), opt);
  rho_ = ag::Var(Tensor::full({1}, std::log(config.initial_b)), true);
}

float GateTrainer::temperature() const { return std::exp(rho_.value()[0]); }

GateDecision GateTrainer::decide(const Tensor& raw_entropy) {
  TEAMNET_CHECK(raw_entropy.rank() == 2 && raw_entropy.dim(1) == k_);
  // Floor the entropies the gate reasons about: once experts specialize,
  // their entropy on "won" samples collapses toward 0 and the ratio between
  // experts explodes past what any bounded multiplicative handicap delta
  // can flip — the controller would stall. The floor preserves the argmin
  // order except between two ultra-confident experts, which are precisely
  // the samples that are safe to reassign for balance.
  Tensor entropy = raw_entropy.clone();
  for (auto& h : entropy.values()) h = std::max(h, config_.entropy_floor);
  const float delta_spread = relative_mean_abs_deviation(entropy);

  // Bias measure and controller target (Eqs. 2 and 4).
  GateDecision decision;
  decision.gamma = assignment_proportions(argmin_gate(entropy), k_);
  const std::vector<float> target =
      config_.capacity_weights.empty()
          ? controller_target(decision.gamma, config_.gain_a)
          : weighted_controller_target(decision.gamma,
                                       config_.capacity_weights,
                                       config_.gain_a);

  // Latent seed for this batch (Algorithm 2 line 3).
  Tensor z = Tensor::uniform({1, config_.latent_dim}, rng_, -1.0f, 1.0f);
  const ag::Var h_const = ag::constant(entropy);

  // Best-iterate tracking: the inner loop's gradient path can oscillate on
  // a hard batch, so the returned delta is the best (lowest hard-J) iterate
  // seen, seeded with the identity gate and the previous batch's solution.
  auto hard_j = [&](const std::vector<float>& d) {
    return gate_objective(
        assignment_proportions(gate_assign(entropy, d), k_), target);
  };
  std::vector<float> best_delta(static_cast<std::size_t>(k_), 1.0f);
  float best_j = hard_j(best_delta);
  if (!last_delta_.empty()) {
    const float j_last = hard_j(last_delta_);
    if (j_last < best_j) {
      best_j = j_last;
      best_delta = last_delta_;
    }
  }

  std::vector<float> delta(static_cast<std::size_t>(k_), 1.0f);
  int since_improvement = 0;
  for (int iter = 0; iter < config_.max_iterations && best_j > config_.j_threshold;
       ++iter) {
    decision.iterations = iter + 1;

    // Stagnation restart: the landscape has flat plateaus (saturated soft
    // indicators); a fresh latent seed gives the MLP a new starting Phi.
    if (since_improvement >= config_.restart_patience) {
      z = Tensor::uniform({1, config_.latent_dim}, rng_, -1.0f, 1.0f);
      since_improvement = 0;
    }

    // ---- forward: delta = 1 + Delta * W(z; Theta) --------------------------
    ag::Var phi = w_.forward(ag::constant(z.clone()));  // [1, K]
    ag::Var delta_var =
        ag::add_scalar(ag::mul_scalar(phi, delta_spread), 1.0f);
    for (int i = 0; i < k_; ++i) {
      // A non-positive delta_i would invert expert i's preference order; the
      // hard gate only ever sees a sane positive band (the soft gradient
      // path below stays unclamped).
      delta[static_cast<std::size_t>(i)] =
          std::clamp(delta_var.value()[i], 1e-2f, 1e3f);
    }
    const float j_hard = hard_j(delta);
    if (j_hard < best_j - 1e-6f) {
      best_j = j_hard;
      best_delta = delta;
      since_improvement = 0;
    } else {
      ++since_improvement;
    }
    if (best_j <= config_.j_threshold) break;

    // ---- soft objective J and Theta step -----------------------------------
    // b is detached here; the meta-estimator owns its update below.
    const ag::Var b_const = ag::constant(Tensor::full({1}, temperature()));
    ag::Var scores = ag::mul(delta_var, h_const);  // [1,K] x [n,K] broadcast
    ag::Var j;
    if (config_.relaxation == GateRelaxation::IndexExpectation) {
      ag::Var gbar = soft_argmin_rows(scores, b_const);
      for (int i = 0; i < k_; ++i) {
        ag::Var gamma_bar_i =
            ag::mean_all(soft_indicator(gbar, i, config_.indicator_c));
        ag::Var term = ag::abs(ag::add_scalar(
            gamma_bar_i, -target[static_cast<std::size_t>(i)]));
        j = j.defined() ? ag::add(j, term) : term;
      }
      j = ag::mul_scalar(j, 1.0f / static_cast<float>(k_));
    } else {
      // gamma_bar = column means of softmax(-b * scores); J in one shot.
      ag::Var weights =
          ag::softmax_rows(ag::neg(ag::mul(scores, b_const)));  // [n, K]
      ag::Var gamma_bar = ag::mul_scalar(
          ag::sum_axis(weights, 0),
          1.0f / static_cast<float>(entropy.dim(0)));  // [1, K]
      Tensor target_row({1, static_cast<std::int64_t>(k_)},
                        std::vector<float>(target.begin(), target.end()));
      j = ag::mean_all(
          ag::abs(ag::sub(gamma_bar, ag::constant(std::move(target_row)))));
    }
    ag::backward(j);
    theta_opt_->step();

    // ---- meta-estimator step (Eq. 6): train b with delta detached ----------
    // One-sided reading of Eq. (6): penalize only rounding distances ABOVE
    // epsilon. Sharpening b when the soft argmin is already near-integer
    // would re-soften it and collapse the relaxation for K >= 3 (the index
    // expectation of a soft row credits the wrong middle expert).
    Tensor scores_const =
        ops::mul(Tensor({1, static_cast<std::int64_t>(k_)},
                        std::vector<float>(delta.begin(), delta.end())),
                 entropy);
    ag::Var b_var = ag::exp(rho_);
    ag::Var gbar_meta =
        soft_argmin_rows(ag::constant(std::move(scores_const)), b_var);
    ag::Var meta_loss = ag::relu(ag::add_scalar(
        mean_rounding_distance(gbar_meta), -config_.meta_target));
    ag::backward(meta_loss);
    if (rho_.has_grad()) {
      rho_.mutable_value()[0] -= config_.meta_lr * rho_.grad()[0];
      // Keep b in a numerically sane band.
      rho_.mutable_value()[0] =
          std::clamp(rho_.mutable_value()[0], std::log(1.0f), std::log(100.0f));
      rho_.zero_grad();
    }
  }

  // Rescue projection: gradient search can stall when an expert is starved
  // (it has never trained, so its entropy is uniformly high and its softmax
  // column carries an exponentially small gradient). For each expert whose
  // achieved share is far below target, directly solve for the delta_i that
  // wins it its target share: expert i takes row x iff
  // delta_i * H_xi < min_j delta_j * H_xj, so the m-th largest ratio
  // (min_j delta_j H_xj) / H_xi is the threshold that wins exactly m rows.
  // The candidate is kept only if it improves the hard objective — the
  // best-iterate contract is preserved.
  if (best_j > config_.j_threshold) {
    const std::int64_t n = entropy.dim(0);
    std::vector<float> candidate = best_delta;
    for (int i = 0; i < k_; ++i) {
      const auto shares = assignment_proportions(
          gate_assign(entropy, candidate), k_);
      const float want = target[static_cast<std::size_t>(i)];
      if (shares[static_cast<std::size_t>(i)] >= 0.5f * want) continue;
      const auto m = static_cast<std::int64_t>(
          std::round(want * static_cast<float>(n)));
      if (m < 1) continue;
      std::vector<float> ratios(static_cast<std::size_t>(n));
      for (std::int64_t r = 0; r < n; ++r) {
        float best_score = std::numeric_limits<float>::max();
        for (int j = 0; j < k_; ++j) {
          if (j == i) continue;
          best_score = std::min(best_score,
                                candidate[static_cast<std::size_t>(j)] *
                                    entropy[r * k_ + j]);
        }
        ratios[static_cast<std::size_t>(r)] =
            best_score / entropy[r * k_ + i];
      }
      std::nth_element(ratios.begin(), ratios.begin() + (m - 1), ratios.end(),
                       std::greater<float>());
      candidate[static_cast<std::size_t>(i)] = std::clamp(
          ratios[static_cast<std::size_t>(m - 1)] * 0.999f, 1e-4f, 1e3f);
    }
    const float j_candidate = hard_j(candidate);
    if (j_candidate < best_j) {
      best_j = j_candidate;
      best_delta = candidate;
    }
  }

  // Final hard assignment under the best delta found.
  decision.assignment = gate_assign(entropy, best_delta);
  decision.gamma_bar = assignment_proportions(decision.assignment, k_);
  decision.objective = best_j;
  decision.delta = best_delta;
  decision.temperature_b = temperature();
  last_delta_ = best_delta;
  return decision;
}

}  // namespace teamnet::core
