// Per-iteration training telemetry: the quantities Figures 6 and 8 of the
// paper plot (the proportion of each batch assigned to each expert).
//
// Thread-safe: record() and every accessor take the internal `mutex_` so
// concurrent expert trainers (and the race stress tests) can write and read
// one instance without external locking. Copy/move are supported — the
// bench harness snapshots trainer telemetry by value — and lock BOTH
// instances via MutexPairLock (std::lock ordering), so concurrent a=b; b=a
// cannot deadlock. `mutex_` is a leaf lock: no other lock is acquired
// while it is held.
#pragma once

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "common/error.hpp"

namespace teamnet::core {

class ConvergenceTelemetry {
 public:
  ConvergenceTelemetry() = default;

  ConvergenceTelemetry(const ConvergenceTelemetry& other) { *this = other; }

  ConvergenceTelemetry& operator=(const ConvergenceTelemetry& other) {
    if (this != &other) {
      MutexPairLock lock(mutex_, other.mutex_);
      gamma_bar_history_ = other.gamma_bar_history_;
      objective_history_ = other.objective_history_;
      gate_iterations_ = other.gate_iterations_;
    }
    return *this;
  }

  ConvergenceTelemetry(ConvergenceTelemetry&& other) {
    MutexLock lock(other.mutex_);
    gamma_bar_history_ = std::move(other.gamma_bar_history_);
    objective_history_ = std::move(other.objective_history_);
    gate_iterations_ = std::move(other.gate_iterations_);
  }

  ConvergenceTelemetry& operator=(ConvergenceTelemetry&& other) {
    if (this != &other) {
      MutexPairLock lock(mutex_, other.mutex_);
      gamma_bar_history_ = std::move(other.gamma_bar_history_);
      objective_history_ = std::move(other.objective_history_);
      gate_iterations_ = std::move(other.gate_iterations_);
    }
    return *this;
  }

  /// Appends one training iteration's gate statistics.
  void record(const std::vector<float>& gamma_bar, float objective, int iters) {
    MutexLock lock(mutex_);
    gamma_bar_history_.push_back(gamma_bar);
    objective_history_.push_back(objective);
    gate_iterations_.push_back(iters);
  }

  std::size_t iterations() const {
    MutexLock lock(mutex_);
    return gamma_bar_history_.size();
  }

  /// Snapshot of gamma_bar at iteration t (inner size = num experts).
  std::vector<float> gamma_bar(std::size_t t) const {
    MutexLock lock(mutex_);
    TEAMNET_CHECK(t < gamma_bar_history_.size());
    return gamma_bar_history_[t];
  }

  /// Final hard gate objective J at iteration t.
  float objective(std::size_t t) const {
    MutexLock lock(mutex_);
    TEAMNET_CHECK(t < objective_history_.size());
    return objective_history_[t];
  }

  /// Gate inner-loop iterations spent on batch t.
  int gate_iters(std::size_t t) const {
    MutexLock lock(mutex_);
    TEAMNET_CHECK(t < gate_iterations_.size());
    return gate_iterations_[t];
  }

  /// Maximum |gamma_bar_i - 1/K| at iteration t.
  float max_deviation(std::size_t t) const {
    MutexLock lock(mutex_);
    return max_deviation_locked(t);
  }

  /// First iteration after which max_deviation stays below `tol` for
  /// `window` consecutive iterations; -1 when never converged.
  int iterations_to_converge(float tol, int window) const {
    MutexLock lock(mutex_);
    int run = 0;
    for (std::size_t t = 0; t < gamma_bar_history_.size(); ++t) {
      run = max_deviation_locked(t) < tol ? run + 1 : 0;
      if (run >= window) return static_cast<int>(t) - window + 1;
    }
    return -1;
  }

  /// Mean gamma_bar over the last `window` iterations (smoothed view used
  /// when printing the convergence figures).
  std::vector<float> smoothed_gamma(std::size_t t, std::size_t window) const;

  /// One coherent copy of the full per-iteration record — the Fig. 3/6/8
  /// series — taken under a single lock so concurrent record() calls can
  /// never tear the three histories out of step.
  struct Series {
    std::vector<std::vector<float>> gamma_bar;  ///< [iteration][expert]
    std::vector<float> objective;
    std::vector<int> gate_iters;
  };
  Series series() const {
    MutexLock lock(mutex_);
    return Series{gamma_bar_history_, objective_history_, gate_iterations_};
  }

  /// Publishes the full series into the process metrics registry under
  /// `<prefix>.gamma_bar.expert<i>`, `<prefix>.objective`, and
  /// `<prefix>.gate_iters`, so `--metrics` snapshots carry the convergence
  /// curves without re-running training.
  void export_to_metrics(const std::string& prefix) const;

 private:
  float max_deviation_locked(std::size_t t) const TN_REQUIRES(mutex_) {
    TEAMNET_CHECK(t < gamma_bar_history_.size());
    const auto& g = gamma_bar_history_[t];
    const float set_point = 1.0f / static_cast<float>(g.size());
    float worst = 0.0f;
    for (float v : g) worst = std::max(worst, std::abs(v - set_point));
    return worst;
  }

  mutable Mutex mutex_;
  std::vector<std::vector<float>> gamma_bar_history_ TN_GUARDED_BY(mutex_);
  std::vector<float> objective_history_ TN_GUARDED_BY(mutex_);
  std::vector<int> gate_iterations_ TN_GUARDED_BY(mutex_);
};

}  // namespace teamnet::core
