// Per-iteration training telemetry: the quantities Figures 6 and 8 of the
// paper plot (the proportion of each batch assigned to each expert).
#pragma once

#include <vector>

#include "common/error.hpp"

namespace teamnet::core {

struct ConvergenceTelemetry {
  /// gamma_bar per training iteration (batch); inner size = num experts.
  std::vector<std::vector<float>> gamma_bar_history;
  /// Final hard gate objective J per iteration.
  std::vector<float> objective_history;
  /// Gate inner-loop iterations spent per batch.
  std::vector<int> gate_iterations;

  void record(const std::vector<float>& gamma_bar, float objective, int iters) {
    gamma_bar_history.push_back(gamma_bar);
    objective_history.push_back(objective);
    gate_iterations.push_back(iters);
  }

  std::size_t iterations() const { return gamma_bar_history.size(); }

  /// Maximum |gamma_bar_i - 1/K| at iteration t.
  float max_deviation(std::size_t t) const {
    TEAMNET_CHECK(t < gamma_bar_history.size());
    const auto& g = gamma_bar_history[t];
    const float set_point = 1.0f / static_cast<float>(g.size());
    float worst = 0.0f;
    for (float v : g) worst = std::max(worst, std::abs(v - set_point));
    return worst;
  }

  /// First iteration after which max_deviation stays below `tol` for
  /// `window` consecutive iterations; -1 when never converged.
  int iterations_to_converge(float tol, int window) const {
    int run = 0;
    for (std::size_t t = 0; t < iterations(); ++t) {
      run = max_deviation(t) < tol ? run + 1 : 0;
      if (run >= window) return static_cast<int>(t) - window + 1;
    }
    return -1;
  }

  /// Mean gamma_bar over the last `window` iterations (smoothed view used
  /// when printing the convergence figures).
  std::vector<float> smoothed_gamma(std::size_t t, std::size_t window) const;
};

}  // namespace teamnet::core
