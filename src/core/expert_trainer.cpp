#include "core/expert_trainer.hpp"

#include "core/gate.hpp"
#include "nn/loss.hpp"
#include "tensor/ops.hpp"

namespace teamnet::core {

ExpertTrainer::ExpertTrainer(std::vector<nn::Module*> experts,
                             const nn::SgdConfig& sgd)
    : experts_(std::move(experts)) {
  TEAMNET_CHECK(!experts_.empty());
  optimizers_.reserve(experts_.size());
  for (auto* expert : experts_) {
    TEAMNET_CHECK(expert != nullptr);
    optimizers_.push_back(std::make_unique<nn::Sgd>(expert->parameters(), sgd));
  }
}

void ExpertTrainer::set_lr_multiplier(float multiplier) {
  for (auto& opt : optimizers_) opt->set_lr_multiplier(multiplier);
}

std::vector<float> ExpertTrainer::train_on_batch(
    const Tensor& x, const std::vector<int>& labels,
    const std::vector<int>& assignment) {
  TEAMNET_CHECK(x.dim(0) == static_cast<std::int64_t>(labels.size()));
  TEAMNET_CHECK(labels.size() == assignment.size());
  const int k = num_experts();
  const auto partitions = partition_by_assignment(assignment, k);

  std::vector<float> losses(static_cast<std::size_t>(k), 0.0f);
  for (int i = 0; i < k; ++i) {
    const auto& rows = partitions[static_cast<std::size_t>(i)];
    if (rows.empty()) continue;  // no expert learns from data it did not win
    Tensor xi = ops::take_rows(x, rows);
    std::vector<int> yi;
    yi.reserve(rows.size());
    for (int r : rows) yi.push_back(labels[static_cast<std::size_t>(r)]);

    nn::Module& expert = *experts_[static_cast<std::size_t>(i)];
    expert.set_training(true);
    ag::Var logits = expert.forward(ag::Var(xi));
    ag::Var loss = nn::cross_entropy_loss(logits, yi);
    ag::backward(loss);
    optimizers_[static_cast<std::size_t>(i)]->step();
    losses[static_cast<std::size_t>(i)] = loss.value()[0];
  }
  return losses;
}

}  // namespace teamnet::core
