#include "core/entropy.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace teamnet::core {

Tensor predictive_entropy(const Tensor& probs) {
  TEAMNET_CHECK(probs.rank() == 2);
  const std::int64_t n = probs.dim(0), c = probs.dim(1);
  Tensor h({n});
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = probs.data() + i * c;
    double acc = 0.0;
    for (std::int64_t j = 0; j < c; ++j) {
      const float p = row[j];
      if (p > 0.0f) acc -= static_cast<double>(p) * std::log(p);
    }
    h[i] = static_cast<float>(acc);
  }
  return h;
}

Tensor entropy_from_logits(const Tensor& logits) {
  return predictive_entropy(ops::softmax_rows(logits));
}

Tensor entropy_matrix(const std::vector<nn::Module*>& experts, const Tensor& x) {
  TEAMNET_CHECK(!experts.empty());
  const std::int64_t n = x.dim(0);
  const std::int64_t k = static_cast<std::int64_t>(experts.size());
  Tensor h({n, k});
  for (std::int64_t i = 0; i < k; ++i) {
    nn::Module& expert = *experts[static_cast<std::size_t>(i)];
    const bool was_training = expert.training();
    expert.set_training(false);
    Tensor he = entropy_from_logits(expert.predict(x));
    expert.set_training(was_training);
    for (std::int64_t r = 0; r < n; ++r) h[r * k + i] = he[r];
  }
  return h;
}

float relative_mean_abs_deviation(const Tensor& entropy) {
  TEAMNET_CHECK(entropy.rank() == 2 && entropy.dim(0) > 0);
  const std::int64_t n = entropy.dim(0), k = entropy.dim(1);
  double total = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = entropy.data() + i * k;
    double mean = 0.0;
    for (std::int64_t j = 0; j < k; ++j) mean += row[j];
    mean /= static_cast<double>(k);
    double dev = 0.0;
    for (std::int64_t j = 0; j < k; ++j) dev += std::abs(row[j] - mean);
    dev /= static_cast<double>(k);
    total += dev / std::max(mean, 1e-6);
  }
  return static_cast<float>(total / static_cast<double>(n));
}

}  // namespace teamnet::core
