#include "core/telemetry.hpp"

namespace teamnet::core {

std::vector<float> ConvergenceTelemetry::smoothed_gamma(
    std::size_t t, std::size_t window) const {
  MutexLock lock(mutex_);
  TEAMNET_CHECK(t < gamma_bar_history_.size() && window > 0);
  const std::size_t k = gamma_bar_history_[t].size();
  const std::size_t lo = t + 1 >= window ? t + 1 - window : 0;
  std::vector<float> mean(k, 0.0f);
  for (std::size_t s = lo; s <= t; ++s) {
    for (std::size_t i = 0; i < k; ++i) mean[i] += gamma_bar_history_[s][i];
  }
  const float denom = static_cast<float>(t - lo + 1);
  for (auto& v : mean) v /= denom;
  return mean;
}

}  // namespace teamnet::core
