#include "core/telemetry.hpp"

#include "obs/metrics.hpp"

namespace teamnet::core {

void ConvergenceTelemetry::export_to_metrics(const std::string& prefix) const {
  // Snapshot first; registry Series mutexes and `mutex_` are both leaves,
  // so never hold one while taking the other. Call once per training run —
  // registry series are append-only.
  const Series snap = series();
  auto& registry = obs::MetricsRegistry::instance();
  const std::size_t experts =
      snap.gamma_bar.empty() ? 0 : snap.gamma_bar.front().size();
  for (std::size_t i = 0; i < experts; ++i) {
    obs::Series& out =
        registry.series(prefix + ".gamma_bar.expert" + std::to_string(i));
    for (const auto& step : snap.gamma_bar) {
      out.append(i < step.size() ? static_cast<double>(step[i]) : 0.0);
    }
  }
  obs::Series& objective = registry.series(prefix + ".objective");
  for (float v : snap.objective) objective.append(static_cast<double>(v));
  obs::Series& iters = registry.series(prefix + ".gate_iters");
  for (int v : snap.gate_iters) iters.append(static_cast<double>(v));
}

std::vector<float> ConvergenceTelemetry::smoothed_gamma(
    std::size_t t, std::size_t window) const {
  MutexLock lock(mutex_);
  TEAMNET_CHECK(t < gamma_bar_history_.size() && window > 0);
  const std::size_t k = gamma_bar_history_[t].size();
  const std::size_t lo = t + 1 >= window ? t + 1 - window : 0;
  std::vector<float> mean(k, 0.0f);
  for (std::size_t s = lo; s <= t; ++s) {
    for (std::size_t i = 0; i < k; ++i) mean[i] += gamma_bar_history_[s][i];
  }
  const float denom = static_cast<float>(t - lo + 1);
  for (auto& v : mean) v /= denom;
  return mean;
}

}  // namespace teamnet::core
