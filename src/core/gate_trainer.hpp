// Algorithm 2 ("Finding Gate G-bar") plus the meta-estimator of Eq. (6).
//
// Each call to `decide` receives the batch's entropy matrix H and returns
// the data-to-expert assignment. Internally it optimizes the control
// variables delta = 1 + Delta * W(z; Theta) by gradient descent on the
// relaxed objective
//   J = (1/K) sum_i | gamma_bar_i(delta) - (1/K - a (gamma_i - 1/K)) |
// where gamma_bar is computed through the soft argmin (Eq. 5) and the soft
// indicator (Eq. 7). The softness temperature b is itself trained by the
// meta-estimator: b = exp(rho), with rho descending Eq. (6)'s objective so
// the soft argmin stays near-integer without saturating gradients.
//
// Theta and rho persist across batches; the latent z is redrawn per batch
// (Algorithm 2 line 3).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "core/gate.hpp"
#include "nn/mlp.hpp"
#include "nn/optim.hpp"

namespace teamnet::core {

/// How gamma_bar is relaxed for gradient descent (Algorithm 2 line 9).
enum class GateRelaxation {
  /// Paper-literal composition: scalar soft argmin (Eq. 5) fed through the
  /// tanh/relu indicator (Eq. 7). Exact near one-hot, but for K >= 3 a row
  /// split between experts 0 and 2 lands its index expectation on 1 and
  /// credits the wrong expert — kept for the ablation bench.
  IndexExpectation,
  /// Direct relaxation: gamma_bar_i = mean_x softmax_j(-b delta_j H_xj)_i,
  /// i.e. the expected assignment probability Eqs. (3)+(5)+(7) approximate.
  /// Stable for any K; the default.
  SoftmaxWeights,
};

struct GateTrainerConfig {
  float gain_a = 0.5f;        ///< proportional-controller gain, 0 < a < 1
  float lr = 0.2f;            ///< eta — gradient step on Theta
  float j_threshold = 0.02f;  ///< epsilon — loop exit on the (hard) objective
  int max_iterations = 80;    ///< safety cap on the inner loop
  int restart_patience = 15;  ///< redraw the latent z after this many
                              ///< iterations without improving the best J
  int latent_dim = 8;         ///< N — length of the latent z
  int hidden_dim = 16;        ///< width of W's hidden layer
  float indicator_c = 10.0f;  ///< c in Eq. (7)
  GateRelaxation relaxation = GateRelaxation::SoftmaxWeights;
  /// Per-expert capacity weights (§VII future work): set points become
  /// w_i / sum(w) instead of 1/K, letting heterogeneous devices receive
  /// proportional training shares. Empty = uniform (the paper's setting).
  std::vector<float> capacity_weights;
  float meta_target = 0.10f;  ///< epsilon in Eq. (6)
  float meta_lr = 0.2f;       ///< step size for rho
  float entropy_floor = 1e-3f;  ///< floor on the entropies the gate sees,
                                ///< keeping expert ratios within what the
                                ///< bounded handicap delta can correct
  float initial_b = 1.0f;     ///< initial soft-argmin temperature — starting
                              ///< soft keeps early gradients alive; the
                              ///< meta-estimator sharpens b as training goes
};

/// Outcome of one gate-training call (one minibatch).
struct GateDecision {
  std::vector<int> assignment;   ///< expert index per batch row
  std::vector<float> gamma;      ///< plain-argmin proportions (bias measure)
  std::vector<float> gamma_bar;  ///< achieved proportions under delta
  std::vector<float> delta;      ///< final control variables
  float objective = 0.0f;        ///< final hard J
  int iterations = 0;            ///< inner-loop steps executed
  float temperature_b = 0.0f;    ///< b after the meta-estimator update
};

class GateTrainer {
 public:
  GateTrainer(int num_experts, const GateTrainerConfig& config, Rng rng);

  /// Runs Algorithm 2 on one batch's entropy matrix [n, K].
  GateDecision decide(const Tensor& entropy);

  float temperature() const;
  int num_experts() const { return k_; }
  const GateTrainerConfig& config() const { return config_; }

 private:
  /// Builds gamma_bar Vars for the current delta/b graph.
  struct SoftProportions;

  int k_;
  GateTrainerConfig config_;
  Rng rng_;
  nn::Sequential w_;                     ///< W(z; Theta): latent -> K
  std::unique_ptr<nn::Sgd> theta_opt_;
  ag::Var rho_;                          ///< b = exp(rho)
  std::vector<float> last_delta_;        ///< warm start for the next batch
};

}  // namespace teamnet::core
