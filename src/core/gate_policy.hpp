// Pluggable gate policies. The paper's TeamNet uses the learned dynamic
// gate (Algorithm 2); the alternatives exist for the ablation benches:
//   * ArgMin      — a = 0, no bias correction ("richer gets richer")
//   * Proportional— the P-controller applied directly to delta, no MLP
//   * Random      — uniform random assignment (SG-MoE-style data routing)
#pragma once

#include <memory>
#include <string>

#include "core/gate_trainer.hpp"

namespace teamnet::core {

enum class GateKind { Learned, ArgMin, Proportional, Random };

std::string to_string(GateKind kind);

class GatePolicy {
 public:
  virtual ~GatePolicy() = default;
  /// Assigns each row of the entropy matrix [n, K] to an expert.
  virtual GateDecision decide(const Tensor& entropy) = 0;
  virtual GateKind kind() const = 0;
};

/// Factory. `rng` seeds the policy's private stream.
std::unique_ptr<GatePolicy> make_gate_policy(GateKind kind, int num_experts,
                                             const GateTrainerConfig& config,
                                             Rng rng);

}  // namespace teamnet::core
