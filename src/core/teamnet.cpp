#include "core/teamnet.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "core/entropy.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "nn/loss.hpp"
#include "tensor/ops.hpp"

namespace teamnet::core {

TeamNetEnsemble::TeamNetEnsemble(std::vector<nn::ModulePtr> experts)
    : experts_(std::move(experts)) {
  TEAMNET_CHECK(!experts_.empty());
  for (auto& e : experts_) {
    TEAMNET_CHECK(e != nullptr);
    e->set_training(false);
  }
}

// analyze:hot  (per-query path: hot-path allocation audit root)
TeamNetEnsemble::InferenceResult TeamNetEnsemble::infer(const Tensor& x,
                                                        SelectionRule rule) {
  const std::int64_t n = x.dim(0);
  const int k = num_experts();

  // Step 3 of Figure 1: every expert runs on the same input.
  std::vector<Tensor> probs(static_cast<std::size_t>(k));
  InferenceResult result;
  result.entropy = Tensor({n, static_cast<std::int64_t>(k)});
  for (int i = 0; i < k; ++i) {
    probs[static_cast<std::size_t>(i)] =
        ops::softmax_rows(experts_[static_cast<std::size_t>(i)]->predict(x));
    Tensor h = predictive_entropy(probs[static_cast<std::size_t>(i)]);
    for (std::int64_t r = 0; r < n; ++r) result.entropy[r * k + i] = h[r];
  }

  const std::int64_t c = probs[0].dim(1);
  result.probs = Tensor({n, c});
  result.chosen.resize(static_cast<std::size_t>(n));
  result.predictions.resize(static_cast<std::size_t>(n));

  if (rule == SelectionRule::ArgMinEntropy) {
    // Steps 4-5: the least-uncertain expert's output is the final answer.
    result.chosen = ops::argmin_rows(result.entropy);
    for (std::int64_t r = 0; r < n; ++r) {
      const int w = result.chosen[static_cast<std::size_t>(r)];
      const float* src = probs[static_cast<std::size_t>(w)].data() + r * c;
      std::copy(src, src + c, result.probs.data() + r * c);
    }
  } else {
    // Majority vote; ties break toward the least-uncertain voter.
    for (std::int64_t r = 0; r < n; ++r) {
      std::vector<int> votes(static_cast<std::size_t>(c), 0);
      for (int i = 0; i < k; ++i) {
        const float* row = probs[static_cast<std::size_t>(i)].data() + r * c;
        const int cls = static_cast<int>(std::max_element(row, row + c) - row);
        ++votes[static_cast<std::size_t>(cls)];
      }
      const int top_votes = *std::max_element(votes.begin(), votes.end());
      int winner = -1;
      float winner_entropy = 1e9f;
      for (int i = 0; i < k; ++i) {
        const float* row = probs[static_cast<std::size_t>(i)].data() + r * c;
        const int cls = static_cast<int>(std::max_element(row, row + c) - row);
        if (votes[static_cast<std::size_t>(cls)] == top_votes &&
            result.entropy[r * k + i] < winner_entropy) {
          winner = i;
          winner_entropy = result.entropy[r * k + i];
        }
      }
      result.chosen[static_cast<std::size_t>(r)] = winner;
      const float* src = probs[static_cast<std::size_t>(winner)].data() + r * c;
      std::copy(src, src + c, result.probs.data() + r * c);
    }
  }

  result.predictions = ops::argmax_rows(result.probs);
  return result;
}

double TeamNetEnsemble::evaluate_accuracy(const data::Dataset& dataset,
                                          SelectionRule rule) {
  const InferenceResult result = infer(dataset.images, rule);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < dataset.labels.size(); ++i) {
    if (result.predictions[i] == dataset.labels[i]) ++correct;
  }
  return dataset.labels.empty()
             ? 0.0
             : static_cast<double>(correct) /
                   static_cast<double>(dataset.labels.size());
}

TeamNetTrainer::TeamNetTrainer(const TeamNetConfig& config,
                               ExpertFactory factory)
    : config_(config), factory_(std::move(factory)) {
  TEAMNET_CHECK(config.num_experts >= 2);
  TEAMNET_CHECK(config.epochs >= 1 && config.batch_size >= 1);
  TEAMNET_CHECK(factory_ != nullptr);
}

TeamNetEnsemble TeamNetTrainer::train(const data::Dataset& train_data) {
  train_data.validate();
  Rng rng(config_.seed);
  telemetry_ = ConvergenceTelemetry{};

  // Build K experts from the factory (paper §III: same downsized
  // architecture, independent random weights).
  std::vector<nn::ModulePtr> experts;
  std::vector<nn::Module*> expert_ptrs;
  for (int i = 0; i < config_.num_experts; ++i) {
    Rng expert_rng = rng.fork(static_cast<std::uint64_t>(i) + 100);
    experts.push_back(factory_(i, expert_rng));
    expert_ptrs.push_back(experts.back().get());
  }

  auto gate = make_gate_policy(config_.gate_kind, config_.num_experts,
                               config_.gate, rng.fork(1));
  ExpertTrainer expert_trainer(expert_ptrs, config_.sgd);

  // Registry handles resolved once, outside the batch loop.
  auto& registry = obs::MetricsRegistry::instance();
  obs::Counter& gate_iterations = registry.counter("gate.iterations_total");
  obs::Counter& gate_batches = registry.counter("gate.batches_total");
  obs::Histogram& gate_iteration_hist = registry.histogram(
      "gate.iterations_per_batch", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
  obs::Gauge& gate_objective = registry.gauge("gate.last_objective");

  Rng shuffle_rng = rng.fork(2);
  data::BatchIterator batches(train_data, config_.batch_size, &shuffle_rng);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    if (config_.lr_schedule) {
      expert_trainer.set_lr_multiplier(config_.lr_schedule(epoch));
    }
    batches.reset();
    for (data::Batch batch = batches.next(); batch.size() > 0;
         batch = batches.next()) {
      // Algorithm 1 lines 6-8.
      Tensor h = entropy_matrix(expert_ptrs, batch.x);
      GateDecision decision;
      {
        obs::TraceSpan span("gate_decide");
        decision = gate->decide(h);
      }
      expert_trainer.train_on_batch(batch.x, batch.y, decision.assignment);
      telemetry_.record(decision.gamma_bar, decision.objective,
                        decision.iterations);
      gate_iterations.add(decision.iterations);
      gate_batches.increment();
      gate_iteration_hist.observe(static_cast<double>(decision.iterations));
      gate_objective.set(static_cast<double>(decision.objective));
    }
    LOG_INFO("teamnet epoch " << epoch + 1 << "/" << config_.epochs
                              << " done, iterations=" << telemetry_.iterations());
  }

  return TeamNetEnsemble(std::move(experts));
}

}  // namespace teamnet::core
