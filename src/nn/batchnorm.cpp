#include "nn/batchnorm.hpp"

#include <cmath>
#include <sstream>

namespace teamnet::nn {

namespace {

/// Decomposes an input shape into (batch*spatial layout helpers).
struct BnLayout {
  std::int64_t n;        // batch
  std::int64_t c;        // channels
  std::int64_t s;        // spatial elements per channel (1 for dense)
  std::int64_t count;    // n * s, elements per channel statistic
};

BnLayout layout_of(const Tensor& x, std::int64_t channels) {
  if (x.rank() == 2) {
    TEAMNET_CHECK_MSG(x.dim(1) == channels, "BatchNorm channels mismatch");
    return {x.dim(0), channels, 1, x.dim(0)};
  }
  TEAMNET_CHECK_MSG(x.rank() == 4 && x.dim(1) == channels,
                    "BatchNorm expects [N,F] or [N,C,H,W]");
  const std::int64_t s = x.dim(2) * x.dim(3);
  return {x.dim(0), channels, s, x.dim(0) * s};
}

/// Flat index helpers: channel-major iteration over (n, s) for channel c.
template <typename F>
void for_each_in_channel(const BnLayout& l, std::int64_t c, F f) {
  if (l.s == 1) {
    for (std::int64_t i = 0; i < l.n; ++i) f(i * l.c + c);
  } else {
    for (std::int64_t i = 0; i < l.n; ++i) {
      const std::int64_t base = (i * l.c + c) * l.s;
      for (std::int64_t p = 0; p < l.s; ++p) f(base + p);
    }
  }
}

}  // namespace

BatchNorm::BatchNorm(std::int64_t channels, float momentum, float eps)
    : channels_(channels), momentum_(momentum), eps_(eps) {
  TEAMNET_CHECK(channels > 0);
  gamma_ = ag::Var(Tensor::ones({channels}), true);
  beta_ = ag::Var(Tensor::zeros({channels}), true);
  running_mean_ = Tensor::zeros({channels});
  running_var_ = Tensor::ones({channels});
}

ag::Var BatchNorm::forward(const ag::Var& input) {
  const Tensor& x = input.value();
  const BnLayout l = layout_of(x, channels_);

  // Per-channel statistics (batch stats in training, running stats in eval).
  Tensor mean({channels_});
  Tensor var({channels_});
  if (training_) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      double acc = 0.0;
      for_each_in_channel(l, c, [&](std::int64_t i) { acc += x[i]; });
      mean[c] = static_cast<float>(acc / static_cast<double>(l.count));
      double vacc = 0.0;
      for_each_in_channel(l, c, [&](std::int64_t i) {
        const double d = x[i] - mean[c];
        vacc += d * d;
      });
      var[c] = static_cast<float>(vacc / static_cast<double>(l.count));
      running_mean_[c] =
          (1.0f - momentum_) * running_mean_[c] + momentum_ * mean[c];
      running_var_[c] = (1.0f - momentum_) * running_var_[c] + momentum_ * var[c];
    }
  } else {
    mean = running_mean_.clone();
    var = running_var_.clone();
  }

  // Normalized activations, cached for the backward pass.
  auto xhat = std::make_shared<Tensor>(x.shape());
  Tensor inv_std({channels_});
  for (std::int64_t c = 0; c < channels_; ++c) {
    inv_std[c] = 1.0f / std::sqrt(var[c] + eps_);
  }
  Tensor out(x.shape());
  const float* g = gamma_.value().data();
  const float* b = beta_.value().data();
  for (std::int64_t c = 0; c < channels_; ++c) {
    const float m = mean[c], is = inv_std[c], gc = g[c], bc = b[c];
    for_each_in_channel(l, c, [&](std::int64_t i) {
      const float xh = (x[i] - m) * is;
      (*xhat)[i] = xh;
      out[i] = gc * xh + bc;
    });
  }

  const bool use_batch_stats = training_;
  const std::int64_t channels = channels_;
  return ag::make_node(
      std::move(out), {input.node(), gamma_.node(), beta_.node()},
      [xhat, inv_std, l, channels, use_batch_stats](ag::Node& node) {
        ag::Node& px = *node.parents[0];
        ag::Node& pg = *node.parents[1];
        ag::Node& pb = *node.parents[2];
        const Tensor& gout = node.grad;

        Tensor dgamma({channels});
        Tensor dbeta({channels});
        for (std::int64_t c = 0; c < channels; ++c) {
          double dg = 0.0, db = 0.0;
          for_each_in_channel(l, c, [&](std::int64_t i) {
            dg += gout[i] * (*xhat)[i];
            db += gout[i];
          });
          dgamma[c] = static_cast<float>(dg);
          dbeta[c] = static_cast<float>(db);
        }
        if (pg.requires_grad) pg.accumulate_grad(dgamma);
        if (pb.requires_grad) pb.accumulate_grad(dbeta);

        if (px.requires_grad) {
          Tensor dx(px.value.shape());
          const float* gamma = pg.value.data();
          const float inv_count = 1.0f / static_cast<float>(l.count);
          for (std::int64_t c = 0; c < channels; ++c) {
            const float gc = gamma[c] * inv_std[c];
            if (use_batch_stats) {
              const float mean_g = dbeta[c] * inv_count;
              const float mean_gx = dgamma[c] * inv_count;
              for_each_in_channel(l, c, [&](std::int64_t i) {
                dx[i] = gc * (gout[i] - mean_g - (*xhat)[i] * mean_gx);
              });
            } else {
              // Eval mode: statistics are constants.
              for_each_in_channel(l, c,
                                  [&](std::int64_t i) { dx[i] = gc * gout[i]; });
            }
          }
          px.accumulate_grad(dx);
        }
      },
      "batchnorm");
}

std::string BatchNorm::name() const {
  std::ostringstream os;
  os << "BatchNorm(" << channels_ << ")";
  return os.str();
}

}  // namespace teamnet::nn
