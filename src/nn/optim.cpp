#include "nn/optim.hpp"

#include <cmath>

namespace teamnet::nn {

Sgd::Sgd(std::vector<ag::Var> params, const SgdConfig& config)
    : Optimizer(std::move(params)), config_(config) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) velocity_.emplace_back(p.value().shape());
}

void Sgd::step() {
  // Global-norm clipping across all parameters that received gradients.
  float scale = 1.0f;
  if (config_.max_grad_norm > 0.0f) {
    double sq = 0.0;
    for (const auto& p : params_) {
      if (!p.has_grad()) continue;
      for (float g : p.grad().values()) sq += static_cast<double>(g) * g;
    }
    const float norm = static_cast<float>(std::sqrt(sq));
    if (norm > config_.max_grad_norm) scale = config_.max_grad_norm / norm;
  }

  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    float* w = p.mutable_value().data();
    const float* g = p.grad().data();
    float* v = velocity_[i].data();
    const std::int64_t n = p.value().numel();
    for (std::int64_t j = 0; j < n; ++j) {
      float grad = g[j] * scale + config_.weight_decay * w[j];
      v[j] = config_.momentum * v[j] + grad;
      w[j] -= config_.lr * lr_multiplier_ * v[j];
    }
    p.zero_grad();
  }
}

Adam::Adam(std::vector<ag::Var> params, const AdamConfig& config)
    : Optimizer(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value().shape());
    v_.emplace_back(p.value().shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    float* w = p.mutable_value().data();
    const float* g = p.grad().data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const std::int64_t n = p.value().numel();
    for (std::int64_t j = 0; j < n; ++j) {
      const float grad = g[j] + config_.weight_decay * w[j];
      m[j] = config_.beta1 * m[j] + (1.0f - config_.beta1) * grad;
      v[j] = config_.beta2 * v[j] + (1.0f - config_.beta2) * grad * grad;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      w[j] -= config_.lr * lr_multiplier_ * mhat / (std::sqrt(vhat) + config_.eps);
    }
    p.zero_grad();
  }
}

}  // namespace teamnet::nn
