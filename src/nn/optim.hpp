// First-order optimizers operating on parameter Vars in place.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"

#include "tensor/autograd.hpp"

namespace teamnet::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Var> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients (parameters without a
  /// gradient are skipped) and then clears all gradients.
  virtual void step() = 0;

  /// Clears gradients without stepping.
  void zero_grad() {
    for (auto& p : params_) p.zero_grad();
  }

  /// Scales the configured learning rate (driven by an LrSchedule between
  /// epochs); 1.0 restores the base rate.
  void set_lr_multiplier(float multiplier) {
    TEAMNET_CHECK(multiplier >= 0.0f);
    lr_multiplier_ = multiplier;
  }
  float lr_multiplier() const { return lr_multiplier_; }

  const std::vector<ag::Var>& params() const { return params_; }

 protected:
  std::vector<ag::Var> params_;
  float lr_multiplier_ = 1.0f;
};

struct SgdConfig {
  float lr = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
  /// When > 0, gradients are rescaled so their global L2 norm is at most
  /// this value (the "normalized gradients" step of Algorithm 3).
  float max_grad_norm = 5.0f;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ag::Var> params, const SgdConfig& config);
  void step() override;

 private:
  SgdConfig config_;
  std::vector<Tensor> velocity_;
};

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<ag::Var> params, const AdamConfig& config);
  void step() override;

 private:
  AdamConfig config_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  std::int64_t t_ = 0;
};

}  // namespace teamnet::nn
