#include "nn/layers.hpp"

#include <cmath>
#include <sstream>

#include "tensor/im2col.hpp"

namespace teamnet::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_(in_features), out_(out_features) {
  TEAMNET_CHECK(in_features > 0 && out_features > 0);
  // He initialization: suits the ReLU activations used throughout.
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_features));
  weight_ = ag::Var(Tensor::randn({in_, out_}, rng, 0.0f, stddev), true);
  bias_ = ag::Var(Tensor::zeros({1, out_}), true);
}

ag::Var Linear::forward(const ag::Var& input) {
  return ag::add(ag::matmul(input, weight_), bias_);
}

Analysis Linear::analyze(const Shape& input_shape) const {
  TEAMNET_CHECK_MSG(input_shape.size() == 1 && input_shape[0] == in_,
                    "Linear expects per-sample shape [" << in_ << "], got "
                                                        << shape_to_string(input_shape));
  return {{out_}, 2 * in_ * out_};
}

std::string Linear::name() const {
  std::ostringstream os;
  os << "Linear(" << in_ << "->" << out_ << ")";
  return os.str();
}

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               Rng& rng)
    : cin_(in_channels),
      cout_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad) {
  TEAMNET_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0 &&
                pad >= 0);
  const std::int64_t fan_in = cin_ * kernel_ * kernel_;
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  weight_ = ag::Var(Tensor::randn({fan_in, cout_}, rng, 0.0f, stddev), true);
  bias_ = ag::Var(Tensor::zeros({cout_}), true);
}

ag::Var Conv2d::forward(const ag::Var& input) {
  return ag::conv2d(input, weight_, bias_, kernel_, stride_, pad_);
}

Analysis Conv2d::analyze(const Shape& input_shape) const {
  TEAMNET_CHECK_MSG(input_shape.size() == 3 && input_shape[0] == cin_,
                    "Conv2d expects per-sample [C,H,W] with C=" << cin_
                        << ", got " << shape_to_string(input_shape));
  const std::int64_t ho = conv_out_dim(input_shape[1], kernel_, stride_, pad_);
  const std::int64_t wo = conv_out_dim(input_shape[2], kernel_, stride_, pad_);
  const std::int64_t flops = 2 * cin_ * kernel_ * kernel_ * cout_ * ho * wo;
  return {{cout_, ho, wo}, flops};
}

std::string Conv2d::name() const {
  std::ostringstream os;
  os << "Conv2d(" << cin_ << "->" << cout_ << ", k=" << kernel_
     << ", s=" << stride_ << ", p=" << pad_ << ")";
  return os.str();
}

}  // namespace teamnet::nn
