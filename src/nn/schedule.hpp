// Learning-rate schedules. A schedule maps the completed-epoch count to a
// multiplier on the base learning rate; `apply` mutates an optimizer's
// config between epochs.
#pragma once

#include <cmath>
#include <functional>

#include "common/error.hpp"

namespace teamnet::nn {

/// lr(epoch) = base * multiplier(epoch); multiplier(0) should be 1.
using LrSchedule = std::function<float(int epoch)>;

/// Constant learning rate (the default behaviour).
inline LrSchedule constant_schedule() {
  return [](int) { return 1.0f; };
}

/// Multiplies the rate by `factor` every `period` epochs.
inline LrSchedule step_decay(int period, float factor) {
  TEAMNET_CHECK(period >= 1 && factor > 0.0f && factor <= 1.0f);
  return [period, factor](int epoch) {
    return std::pow(factor, static_cast<float>(epoch / period));
  };
}

/// Half-cosine from 1 down to `floor` over `total_epochs`.
inline LrSchedule cosine_decay(int total_epochs, float floor = 0.0f) {
  TEAMNET_CHECK(total_epochs >= 1 && floor >= 0.0f && floor <= 1.0f);
  return [total_epochs, floor](int epoch) {
    const float t =
        std::min(1.0f, static_cast<float>(epoch) /
                           static_cast<float>(total_epochs));
    return floor + (1.0f - floor) * 0.5f * (1.0f + std::cos(t * 3.14159265f));
  };
}

}  // namespace teamnet::nn
