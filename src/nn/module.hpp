// Module abstraction for neural networks.
//
// A Module owns its parameters as autograd leaf Vars; `forward` builds a
// fresh autograd graph per call. `analyze` statically reports per-sample
// output shape and FLOPs, which the edge-device simulator (src/sim) uses to
// model inference latency on Jetson/RPi-class hardware.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/autograd.hpp"

namespace teamnet::nn {

/// Static per-sample cost analysis of a module.
struct Analysis {
  Shape output_shape;   ///< per-sample shape (no batch dimension)
  std::int64_t flops = 0;  ///< multiply-accumulates counted as 2 FLOPs
};

class Module {
 public:
  virtual ~Module() = default;

  /// Builds the forward graph for a batched input and returns the output Var.
  virtual ag::Var forward(const ag::Var& input) = 0;

  /// Trainable parameters in a deterministic order (used by optimizers and
  /// serialization). Default: none.
  virtual std::vector<ag::Var> parameters() { return {}; }

  /// Non-trainable state tensors that must survive serialization (e.g.
  /// batch-norm running statistics), in a deterministic order.
  virtual std::vector<Tensor*> buffers() { return {}; }

  /// Per-sample cost analysis given the per-sample input shape.
  virtual Analysis analyze(const Shape& input_shape) const = 0;

  /// Toggles training-time behaviour (batch-norm statistics, shake-shake
  /// stochastic mixing). Default stores the flag; containers recurse.
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  /// Short human-readable name ("Linear(784->64)").
  virtual std::string name() const = 0;

  /// Convenience: forward pass on a plain tensor without tracking gradients.
  Tensor predict(const Tensor& input) {
    return forward(ag::constant(input)).value();
  }

  /// Total number of scalar parameters.
  std::int64_t num_parameters() {
    std::int64_t n = 0;
    for (const auto& p : parameters()) n += p.value().numel();
    return n;
  }

  /// Parameter footprint in bytes (float32 storage).
  std::int64_t parameter_bytes() {
    return num_parameters() * static_cast<std::int64_t>(sizeof(float));
  }

 protected:
  bool training_ = true;
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace teamnet::nn
