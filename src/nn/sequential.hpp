// Ordered container of modules; also the unit the MPI baselines partition.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "nn/module.hpp"

namespace teamnet::nn {

class Sequential : public Module {
 public:
  Sequential() = default;

  /// Constructs a layer in place and appends it.
  template <typename M, typename... Args>
  M& emplace(Args&&... args) {
    auto layer = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  void append(ModulePtr layer) { layers_.push_back(std::move(layer)); }

  ag::Var forward(const ag::Var& input) override {
    ag::Var h = input;
    for (auto& layer : layers_) h = layer->forward(h);
    return h;
  }

  std::vector<ag::Var> parameters() override {
    std::vector<ag::Var> params;
    for (auto& layer : layers_) {
      auto sub = layer->parameters();
      params.insert(params.end(), sub.begin(), sub.end());
    }
    return params;
  }

  std::vector<Tensor*> buffers() override {
    std::vector<Tensor*> all;
    for (auto& layer : layers_) {
      auto sub = layer->buffers();
      all.insert(all.end(), sub.begin(), sub.end());
    }
    return all;
  }

  Analysis analyze(const Shape& input_shape) const override {
    Analysis total{input_shape, 0};
    for (const auto& layer : layers_) {
      Analysis a = layer->analyze(total.output_shape);
      total.output_shape = a.output_shape;
      total.flops += a.flops;
    }
    return total;
  }

  void set_training(bool training) override {
    Module::set_training(training);
    for (auto& layer : layers_) layer->set_training(training);
  }

  std::string name() const override { return "Sequential"; }

  std::size_t size() const { return layers_.size(); }
  Module& layer(std::size_t i) { return *layers_.at(i); }
  const Module& layer(std::size_t i) const { return *layers_.at(i); }

 private:
  std::vector<ModulePtr> layers_;
};

}  // namespace teamnet::nn
