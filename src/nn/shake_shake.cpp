#include "nn/shake_shake.hpp"

#include <sstream>

namespace teamnet::nn {

namespace {

std::unique_ptr<Sequential> make_branch(std::int64_t cin, std::int64_t cout,
                                        std::int64_t stride, Rng& rng) {
  auto branch = std::make_unique<Sequential>();
  branch->emplace<Conv2d>(cin, cout, 3, stride, 1, rng);
  branch->emplace<BatchNorm>(cout);
  branch->emplace<ReLU>();
  branch->emplace<Conv2d>(cout, cout, 3, 1, 1, rng);
  branch->emplace<BatchNorm>(cout);
  return branch;
}

}  // namespace

ShakeBlock::ShakeBlock(std::int64_t in_channels, std::int64_t out_channels,
                       std::int64_t stride, Rng& rng)
    : stride_(stride), shake_rng_(rng.fork(0xb10c)) {
  branch0_ = make_branch(in_channels, out_channels, stride, rng);
  branch1_ = make_branch(in_channels, out_channels, stride, rng);
  if (in_channels != out_channels || stride != 1) {
    skip_ = std::make_unique<Sequential>();
    skip_->emplace<Conv2d>(in_channels, out_channels, 1, stride, 0, rng);
    skip_->emplace<BatchNorm>(out_channels);
  }
}

ag::Var ShakeBlock::forward_branch(int b, const ag::Var& input) {
  TEAMNET_CHECK(b == 0 || b == 1);
  return branch(b).forward(input);
}

ag::Var ShakeBlock::forward_skip(const ag::Var& input) {
  return skip_ ? skip_->forward(input) : input;
}

ag::Var ShakeBlock::combine(const ag::Var& branch0, const ag::Var& branch1,
                            const ag::Var& skip) {
  // Deterministic equal mix — the eval-time rule.
  ag::Var mixed = ag::shake_combine(branch0, branch1, 0.5f, 0.5f);
  return ag::relu(ag::add(mixed, skip));
}

ag::Var ShakeBlock::forward(const ag::Var& input) {
  ag::Var b0 = branch0_->forward(input);
  ag::Var b1 = branch1_->forward(input);
  ag::Var skip = forward_skip(input);
  float alpha = 0.5f, beta = 0.5f;
  if (training_) {
    alpha = shake_rng_.uniform(0.0f, 1.0f);
    beta = shake_rng_.uniform(0.0f, 1.0f);
  }
  ag::Var mixed = ag::shake_combine(b0, b1, alpha, beta);
  return ag::relu(ag::add(mixed, skip));
}

std::vector<ag::Var> ShakeBlock::parameters() {
  std::vector<ag::Var> params = branch0_->parameters();
  auto p1 = branch1_->parameters();
  params.insert(params.end(), p1.begin(), p1.end());
  if (skip_) {
    auto ps = skip_->parameters();
    params.insert(params.end(), ps.begin(), ps.end());
  }
  return params;
}

std::vector<Tensor*> ShakeBlock::buffers() {
  std::vector<Tensor*> all = branch0_->buffers();
  auto b1 = branch1_->buffers();
  all.insert(all.end(), b1.begin(), b1.end());
  if (skip_) {
    auto bs = skip_->buffers();
    all.insert(all.end(), bs.begin(), bs.end());
  }
  return all;
}

Analysis ShakeBlock::analyze(const Shape& input_shape) const {
  Analysis b0 = branch0_->analyze(input_shape);
  Analysis b1 = branch1_->analyze(input_shape);
  std::int64_t flops = b0.flops + b1.flops;
  if (skip_) flops += skip_->analyze(input_shape).flops;
  flops += 3 * shape_numel(b0.output_shape);  // mix + add + relu
  return {b0.output_shape, flops};
}

std::int64_t ShakeBlock::branch_flops(const Shape& input_shape) const {
  return branch0_->analyze(input_shape).flops;
}

void ShakeBlock::set_training(bool training) {
  Module::set_training(training);
  branch0_->set_training(training);
  branch1_->set_training(training);
  if (skip_) skip_->set_training(training);
}

std::int64_t ShakeShakeNet::blocks_for_depth(std::int64_t depth) {
  // depth = 1 (stem conv) + 2 * blocks (two convs per block path) + 1 (fc)
  TEAMNET_CHECK_MSG(depth >= 4 && (depth - 2) % 2 == 0,
                    "Shake-Shake depth must be even and >= 4, got " << depth);
  return (depth - 2) / 2;
}

ShakeShakeNet::ShakeShakeNet(const ShakeShakeConfig& config, Rng& rng)
    : config_(config) {
  const std::int64_t total_blocks = blocks_for_depth(config.depth);
  // Split blocks across two stages; stage 2 doubles channels and halves the
  // spatial resolution via its first (strided) block.
  const std::int64_t stage1 = (total_blocks + 1) / 2;
  const std::int64_t stage2 = total_blocks - stage1;

  stem_ = std::make_unique<Sequential>();
  stem_->emplace<Conv2d>(config.in_channels, config.base_channels, 3, 1, 1, rng);
  stem_->emplace<BatchNorm>(config.base_channels);
  stem_->emplace<ReLU>();

  std::int64_t channels = config.base_channels;
  for (std::int64_t i = 0; i < stage1; ++i) {
    blocks_.push_back(std::make_unique<ShakeBlock>(channels, channels, 1, rng));
  }
  for (std::int64_t i = 0; i < stage2; ++i) {
    const std::int64_t out = 2 * config.base_channels;
    const std::int64_t stride = (i == 0) ? 2 : 1;
    blocks_.push_back(std::make_unique<ShakeBlock>(channels, out, stride, rng));
    channels = out;
  }

  head_ = std::make_unique<Sequential>();
  head_->emplace<GlobalAvgPool>();
  head_->emplace<Linear>(channels, config.num_classes, rng);
}

ag::Var ShakeShakeNet::forward(const ag::Var& input) {
  ag::Var h = stem_->forward(input);
  for (auto& block : blocks_) h = block->forward(h);
  return head_->forward(h);
}

std::vector<ag::Var> ShakeShakeNet::parameters() {
  std::vector<ag::Var> params = stem_->parameters();
  for (auto& block : blocks_) {
    auto bp = block->parameters();
    params.insert(params.end(), bp.begin(), bp.end());
  }
  auto hp = head_->parameters();
  params.insert(params.end(), hp.begin(), hp.end());
  return params;
}

std::vector<Tensor*> ShakeShakeNet::buffers() {
  std::vector<Tensor*> all = stem_->buffers();
  for (auto& block : blocks_) {
    auto bb = block->buffers();
    all.insert(all.end(), bb.begin(), bb.end());
  }
  auto hb = head_->buffers();
  all.insert(all.end(), hb.begin(), hb.end());
  return all;
}

Analysis ShakeShakeNet::analyze(const Shape& input_shape) const {
  Analysis total = stem_->analyze(input_shape);
  for (const auto& block : blocks_) {
    Analysis a = block->analyze(total.output_shape);
    total.output_shape = a.output_shape;
    total.flops += a.flops;
  }
  Analysis head = head_->analyze(total.output_shape);
  total.output_shape = head.output_shape;
  total.flops += head.flops;
  return total;
}

void ShakeShakeNet::set_training(bool training) {
  Module::set_training(training);
  stem_->set_training(training);
  for (auto& block : blocks_) block->set_training(training);
  head_->set_training(training);
}

std::string ShakeShakeNet::name() const {
  std::ostringstream os;
  os << "SS-" << config_.depth;
  return os.str();
}

}  // namespace teamnet::nn
