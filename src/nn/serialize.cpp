#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/raw_bytes.hpp"

namespace teamnet::nn {

namespace {

constexpr char kMagic[4] = {'T', 'N', 'E', 'T'};
constexpr std::uint32_t kVersion = 2;

}  // namespace

std::int64_t checked_decode_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    if (d < 0) throw SerializationError("negative dimension in decoded shape");
    if (d != 0 && n > kMaxDecodeTensorElems / d) {
      throw SerializationError("implausible tensor size in decoded shape");
    }
    n *= d;
  }
  return n;
}

void write_tensor(std::ostream& os, const Tensor& t) {
  write_raw(os, checked_narrow<std::uint32_t>(t.rank()));
  for (std::int64_t d = 0; d < t.rank(); ++d) write_raw(os, t.dim(d));
  write_raw_array(os, t.data(), static_cast<std::size_t>(t.numel()));
  if (!os) throw SerializationError("tensor write failed");
}

Tensor read_tensor(std::istream& is) {
  const auto rank = read_raw<std::uint32_t>(is);
  if (rank > 8) throw SerializationError("implausible tensor rank");
  Shape shape(rank);
  for (auto& d : shape) {
    d = read_raw<std::int64_t>(is);
    if (d < 0 || d > (1 << 28)) throw SerializationError("implausible dim");
  }
  (void)checked_decode_numel(shape);  // reject overflow / oversize upfront
  Tensor t(shape);
  read_raw_array(is, t.data(), static_cast<std::size_t>(t.numel()));
  return t;
}

void save_tensors(std::ostream& os, const std::vector<Tensor>& tensors) {
  write_raw_array(os, kMagic, sizeof(kMagic));
  write_raw(os, kVersion);
  write_raw(os, static_cast<std::uint64_t>(tensors.size()));
  for (const auto& t : tensors) write_tensor(os, t);
}

std::vector<Tensor> load_tensors(std::istream& is) {
  char magic[4];
  read_raw_array(is, magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw SerializationError("bad magic — not a TeamNet checkpoint");
  }
  const auto version = read_raw<std::uint32_t>(is);
  if (version != kVersion) {
    throw SerializationError("unsupported checkpoint version " +
                             std::to_string(version));
  }
  const auto count = read_raw<std::uint64_t>(is);
  if (count > (1u << 20)) throw SerializationError("implausible tensor count");
  std::vector<Tensor> tensors;
  tensors.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) tensors.push_back(read_tensor(is));
  return tensors;
}

std::vector<Tensor> snapshot_parameters(Module& module) {
  std::vector<Tensor> values;
  for (const auto& p : module.parameters()) values.push_back(p.value().clone());
  // Non-trainable state (batch-norm running stats) follows the parameters.
  for (const Tensor* b : module.buffers()) values.push_back(b->clone());
  return values;
}

void restore_parameters(Module& module, const std::vector<Tensor>& values) {
  auto params = module.parameters();
  auto buffers = module.buffers();
  TEAMNET_CHECK_MSG(params.size() + buffers.size() == values.size(),
                    "tensor count mismatch: module has "
                        << params.size() << " params + " << buffers.size()
                        << " buffers, checkpoint has " << values.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    TEAMNET_CHECK_MSG(params[i].value().shape() == values[i].shape(),
                      "parameter " << i << " shape mismatch");
    std::memcpy(params[i].mutable_value().data(), values[i].data(),
                static_cast<std::size_t>(values[i].numel()) * sizeof(float));
  }
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    const Tensor& src = values[params.size() + i];
    TEAMNET_CHECK_MSG(buffers[i]->shape() == src.shape(),
                      "buffer " << i << " shape mismatch");
    std::memcpy(buffers[i]->data(), src.data(),
                static_cast<std::size_t>(src.numel()) * sizeof(float));
  }
}

void save_module(const std::string& path, Module& module) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw SerializationError("cannot open for write: " + path);
  save_tensors(os, snapshot_parameters(module));
}

void load_module(const std::string& path, Module& module) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw SerializationError("cannot open for read: " + path);
  restore_parameters(module, load_tensors(is));
}

std::string serialize_parameters(Module& module) {
  std::ostringstream os(std::ios::binary);
  save_tensors(os, snapshot_parameters(module));
  return os.str();
}

void deserialize_parameters(const std::string& bytes, Module& module) {
  std::istringstream is(bytes, std::ios::binary);
  restore_parameters(module, load_tensors(is));
}

}  // namespace teamnet::nn
