// Binary (de)serialization of tensors and module parameters.
//
// Format (little-endian):
//   magic "TNET" | u32 version | u64 tensor_count |
//   per tensor: u32 rank | i64 dims[rank] | f32 data[numel]
//
// Used for model checkpoints and for shipping expert weights to edge
// workers over the socket layer.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/module.hpp"
#include "tensor/tensor.hpp"

namespace teamnet::nn {

/// Largest element count a DECODER will accept for one tensor (16M floats
/// = 64 MiB). Encoding is unbounded; the bound only rejects wire/checkpoint
/// input whose header promises more data than any TeamNet model ships,
/// before the decoder allocates for it. Shared by the checkpoint, message
/// and quantized decoders so the fuzz harnesses test one contract.
constexpr std::int64_t kMaxDecodeTensorElems = std::int64_t{1} << 24;

/// Overflow-safe shape_numel for decoders: throws SerializationError when
/// the dims are negative, multiply past INT64_MAX, or exceed
/// kMaxDecodeTensorElems (shape_numel would be UB on the overflow case).
std::int64_t checked_decode_numel(const Shape& shape);

void write_tensor(std::ostream& os, const Tensor& t);
Tensor read_tensor(std::istream& is);

/// Serializes all tensors in order.
void save_tensors(std::ostream& os, const std::vector<Tensor>& tensors);
std::vector<Tensor> load_tensors(std::istream& is);

/// Snapshot of a module's full state: parameters() followed by buffers()
/// (batch-norm running statistics etc.), all deep copies.
std::vector<Tensor> snapshot_parameters(Module& module);

/// Copies `values` back into the module's parameters and buffers; counts
/// and shapes must match.
void restore_parameters(Module& module, const std::vector<Tensor>& values);

/// File-based convenience wrappers.
void save_module(const std::string& path, Module& module);
void load_module(const std::string& path, Module& module);

/// In-memory round trip (used by the network layer to ship weights).
std::string serialize_parameters(Module& module);
void deserialize_parameters(const std::string& bytes, Module& module);

}  // namespace teamnet::nn
