// Inverted dropout: training-mode activations are zeroed with probability p
// and survivors scaled by 1/(1-p), so eval mode is the identity. Useful for
// regularizing the larger expert configurations.
#pragma once

#include "common/rng.hpp"
#include "nn/module.hpp"

namespace teamnet::nn {

class Dropout : public Module {
 public:
  explicit Dropout(float drop_probability, Rng rng = Rng(0xd20b));

  ag::Var forward(const ag::Var& input) override;
  Analysis analyze(const Shape& input_shape) const override {
    return {input_shape, shape_numel(input_shape)};
  }
  std::string name() const override;

  float drop_probability() const { return p_; }

 private:
  float p_;
  Rng rng_;
};

}  // namespace teamnet::nn
