// Per-tensor affine uint8 quantization for shipping expert weights to edge
// devices: ~4x smaller transfers at a bounded reconstruction error. Used by
// deployments where the WiFi link, not accuracy, is the constraint.
//
// Wire format (little-endian):
//   magic "TNQ1" | u64 tensor_count |
//   per tensor: u32 rank | i64 dims[rank] | f32 min | f32 scale | u8 data[]
// where value = min + scale * q.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/module.hpp"
#include "tensor/tensor.hpp"

namespace teamnet::nn {

struct QuantizedTensor {
  Shape shape;
  float min = 0.0f;
  float scale = 0.0f;  ///< (max - min) / 255; 0 for constant tensors
  std::vector<std::uint8_t> data;

  std::int64_t numel() const { return shape_numel(shape); }
};

/// Quantizes to 8 bits; max absolute reconstruction error is scale / 2.
QuantizedTensor quantize(const Tensor& t);
Tensor dequantize(const QuantizedTensor& q);

/// Full module state (parameters + buffers) as a quantized byte string.
std::string serialize_parameters_quantized(Module& module);

/// Decode-only half of the quantized format: parses `bytes` and returns the
/// dequantized tensors without needing a module. This is the entry point
/// the fuzz harness and the robustness tests drive — any input either
/// decodes or throws SerializationError, never UB.
std::vector<Tensor> dequantize_snapshot(const std::string& bytes);

/// Restores a quantized snapshot into the module (counts/shapes must match).
void deserialize_parameters_quantized(const std::string& bytes, Module& module);

}  // namespace teamnet::nn
