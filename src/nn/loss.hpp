// Classification losses and metrics.
#pragma once

#include <vector>

#include "tensor/autograd.hpp"
#include "tensor/ops.hpp"

namespace teamnet::nn {

/// Mean cross-entropy between raw logits [N, C] and integer labels
/// (Algorithm 3's objective sum_c y log f(x; theta)).
inline ag::Var cross_entropy_loss(const ag::Var& logits,
                                  const std::vector<int>& labels) {
  return ag::nll_loss(ag::log_softmax_rows(logits), labels);
}

/// Fraction of rows whose argmax matches the label.
inline double accuracy(const Tensor& logits, const std::vector<int>& labels) {
  TEAMNET_CHECK(logits.dim(0) == static_cast<std::int64_t>(labels.size()));
  const auto predictions = ops::argmax_rows(logits);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return labels.empty() ? 0.0
                        : static_cast<double>(correct) /
                              static_cast<double>(labels.size());
}

}  // namespace teamnet::nn
