// The MLP family used in the paper's MNIST experiments: MLP-2, MLP-4 and
// MLP-8, where the number counts Linear layers. TeamNet trains 4xMLP-2 or
// 2xMLP-4 experts against an MLP-8 baseline.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "nn/layers.hpp"
#include "nn/sequential.hpp"

namespace teamnet::nn {

struct MlpConfig {
  std::int64_t in_features = 784;   // 28x28 grayscale
  std::int64_t num_classes = 10;
  std::int64_t depth = 8;           // total Linear layers (paper's "MLP-8")
  std::int64_t hidden = 64;
};

/// Plain feed-forward classifier: (Linear -> ReLU) x (depth-1) -> Linear.
/// Exposes its Linear layers so the MPI-Matrix baseline can row-partition
/// the weight matrices across edge nodes.
class MlpNet : public Sequential {
 public:
  MlpNet(const MlpConfig& config, Rng& rng);

  const MlpConfig& config() const { return config_; }
  /// The Linear layers in forward order (non-owning).
  const std::vector<Linear*>& linear_layers() const { return linears_; }

  std::string name() const override;

 private:
  MlpConfig config_;
  std::vector<Linear*> linears_;
};

}  // namespace teamnet::nn
