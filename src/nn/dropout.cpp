#include "nn/dropout.hpp"

#include <sstream>

#include "tensor/ops.hpp"

namespace teamnet::nn {

Dropout::Dropout(float drop_probability, Rng rng)
    : p_(drop_probability), rng_(rng) {
  TEAMNET_CHECK_MSG(p_ >= 0.0f && p_ < 1.0f, "drop probability in [0, 1)");
}

ag::Var Dropout::forward(const ag::Var& input) {
  if (!training_ || p_ == 0.0f) return input;
  const float keep = 1.0f - p_;
  Tensor mask(input.value().shape());
  for (auto& m : mask.values()) {
    m = rng_.uniform(0.0f, 1.0f) < keep ? 1.0f / keep : 0.0f;
  }
  return ag::mul(input, ag::constant(std::move(mask)));
}

std::string Dropout::name() const {
  std::ostringstream os;
  os << "Dropout(" << p_ << ")";
  return os.str();
}

}  // namespace teamnet::nn
