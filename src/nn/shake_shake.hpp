// Shake-Shake regularized CNN family (Gastaldi 2017), downsized for this
// reproduction (see DESIGN.md §1.1). The paper trains SS-26 as the CIFAR
// baseline and 2xSS-14 / 4xSS-8 as TeamNet experts; the depth counts conv
// layers along one path plus the final classifier:
//   depth = 1 (stem) + 2 * total_blocks + 1 (fc)
// so SS-8 -> 3 blocks, SS-14 -> 6 blocks, SS-26 -> 12 blocks.
//
// Each residual block has two parallel conv branches mixed with a random
// convex coefficient alpha on the forward pass and an independent beta on
// the backward pass ("shake-shake"). The two-branch topology is what the
// MPI-Branch baseline splits across two edge nodes.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "nn/batchnorm.hpp"
#include "nn/layers.hpp"
#include "nn/sequential.hpp"

namespace teamnet::nn {

struct ShakeShakeConfig {
  std::int64_t depth = 26;         // SS-8 / SS-14 / SS-26
  std::int64_t in_channels = 3;
  std::int64_t image_size = 16;    // input is [C, image, image]
  std::int64_t num_classes = 10;
  std::int64_t base_channels = 8;  // stage-2 doubles this
};

/// One two-branch residual block. Exposed so MPI-Branch can execute the
/// branches on different ranks.
class ShakeBlock : public Module {
 public:
  ShakeBlock(std::int64_t in_channels, std::int64_t out_channels,
             std::int64_t stride, Rng& rng);

  ag::Var forward(const ag::Var& input) override;
  std::vector<ag::Var> parameters() override;
  std::vector<Tensor*> buffers() override;
  Analysis analyze(const Shape& input_shape) const override;
  void set_training(bool training) override;
  std::string name() const override { return "ShakeBlock"; }

  /// Branch b (0 or 1) applied to `input` — used by MPI-Branch to run each
  /// branch on its own edge node; the caller then mixes and adds the skip.
  ag::Var forward_branch(int b, const ag::Var& input);
  /// Skip connection applied to `input` (identity or 1x1 conv + BN).
  ag::Var forward_skip(const ag::Var& input);
  /// Eval-time mixing coefficient (0.5) applied to pre-computed branches.
  ag::Var combine(const ag::Var& branch0, const ag::Var& branch1,
                  const ag::Var& skip);

  /// Per-sample FLOPs of a single branch (both branches are identical).
  std::int64_t branch_flops(const Shape& input_shape) const;

  /// Direct access to the branch / skip Sequentials — the MPI baselines
  /// partition these across ranks.
  Sequential& branch_seq(int b) {
    TEAMNET_CHECK(b == 0 || b == 1);
    return b == 0 ? *branch0_ : *branch1_;
  }
  /// nullptr when the skip connection is the identity.
  Sequential* skip_seq() { return skip_.get(); }
  std::int64_t stride() const { return stride_; }

 private:
  Sequential& branch(int b) { return b == 0 ? *branch0_ : *branch1_; }

  std::int64_t stride_;
  std::unique_ptr<Sequential> branch0_;
  std::unique_ptr<Sequential> branch1_;
  std::unique_ptr<Sequential> skip_;  // nullptr => identity
  Rng shake_rng_;
};

class ShakeShakeNet : public Module {
 public:
  ShakeShakeNet(const ShakeShakeConfig& config, Rng& rng);

  ag::Var forward(const ag::Var& input) override;
  std::vector<ag::Var> parameters() override;
  std::vector<Tensor*> buffers() override;
  Analysis analyze(const Shape& input_shape) const override;
  void set_training(bool training) override;
  std::string name() const override;

  const ShakeShakeConfig& config() const { return config_; }
  std::size_t num_blocks() const { return blocks_.size(); }
  ShakeBlock& block(std::size_t i) { return *blocks_.at(i); }
  Sequential& stem() { return *stem_; }
  Sequential& head() { return *head_; }

  /// Blocks per (depth) per DESIGN: depth = 2 + 2 * total_blocks.
  static std::int64_t blocks_for_depth(std::int64_t depth);

 private:
  ShakeShakeConfig config_;
  std::unique_ptr<Sequential> stem_;
  std::vector<std::unique_ptr<ShakeBlock>> blocks_;
  std::unique_ptr<Sequential> head_;  // GAP + Linear
};

}  // namespace teamnet::nn
