// Batch normalization (Ioffe & Szegedy 2015) for both dense ([N, F]) and
// convolutional ([N, C, H, W]) activations. Training mode normalizes by the
// batch statistics and maintains exponential running averages that eval mode
// uses instead.
#pragma once

#include "nn/module.hpp"

namespace teamnet::nn {

class BatchNorm : public Module {
 public:
  /// `channels` is F for 2-D inputs and C for 4-D inputs.
  explicit BatchNorm(std::int64_t channels, float momentum = 0.1f,
                     float eps = 1e-5f);

  ag::Var forward(const ag::Var& input) override;
  std::vector<ag::Var> parameters() override { return {gamma_, beta_}; }
  std::vector<Tensor*> buffers() override {
    return {&running_mean_, &running_var_};
  }
  Analysis analyze(const Shape& input_shape) const override {
    return {input_shape, 4 * shape_numel(input_shape)};
  }
  std::string name() const override;

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  std::int64_t channels_;
  float momentum_;
  float eps_;
  ag::Var gamma_;  ///< [channels]
  ag::Var beta_;   ///< [channels]
  Tensor running_mean_;
  Tensor running_var_;
};

}  // namespace teamnet::nn
