// Basic layers: Linear, Conv2d, activations, Flatten.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "nn/module.hpp"

namespace teamnet::nn {

/// Fully connected layer: y = x W + b, x is [N, in].
class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng);

  ag::Var forward(const ag::Var& input) override;
  std::vector<ag::Var> parameters() override { return {weight_, bias_}; }
  Analysis analyze(const Shape& input_shape) const override;
  std::string name() const override;

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }
  ag::Var& weight() { return weight_; }
  ag::Var& bias() { return bias_; }

 private:
  std::int64_t in_;
  std::int64_t out_;
  ag::Var weight_;  ///< [in, out]
  ag::Var bias_;    ///< [1, out]
};

/// 2-D convolution over NCHW inputs; weight stored as [Cin*k*k, Cout] so the
/// forward pass is a single im2col + GEMM.
class Conv2d : public Module {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t pad, Rng& rng);

  ag::Var forward(const ag::Var& input) override;
  std::vector<ag::Var> parameters() override { return {weight_, bias_}; }
  Analysis analyze(const Shape& input_shape) const override;
  std::string name() const override;

  std::int64_t in_channels() const { return cin_; }
  std::int64_t out_channels() const { return cout_; }
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t pad() const { return pad_; }
  ag::Var& weight() { return weight_; }
  ag::Var& bias() { return bias_; }

 private:
  std::int64_t cin_, cout_, kernel_, stride_, pad_;
  ag::Var weight_;  ///< [Cin*k*k, Cout]
  ag::Var bias_;    ///< [Cout]
};

class ReLU : public Module {
 public:
  ag::Var forward(const ag::Var& input) override { return ag::relu(input); }
  Analysis analyze(const Shape& input_shape) const override {
    return {input_shape, shape_numel(input_shape)};
  }
  std::string name() const override { return "ReLU"; }
};

class Tanh : public Module {
 public:
  ag::Var forward(const ag::Var& input) override { return ag::tanh(input); }
  Analysis analyze(const Shape& input_shape) const override {
    return {input_shape, shape_numel(input_shape)};
  }
  std::string name() const override { return "Tanh"; }
};

/// [N, C, H, W] (or any rank >= 2) -> [N, prod(rest)].
class Flatten : public Module {
 public:
  ag::Var forward(const ag::Var& input) override {
    const std::int64_t n = input.value().dim(0);
    return ag::reshape(input, {n, -1});
  }
  Analysis analyze(const Shape& input_shape) const override {
    return {{shape_numel(input_shape)}, 0};
  }
  std::string name() const override { return "Flatten"; }
};

/// Global average pooling: [N, C, H, W] -> [N, C].
class GlobalAvgPool : public Module {
 public:
  ag::Var forward(const ag::Var& input) override {
    return ag::global_avg_pool(input);
  }
  Analysis analyze(const Shape& input_shape) const override {
    TEAMNET_CHECK(input_shape.size() == 3);
    return {{input_shape[0]}, shape_numel(input_shape)};
  }
  std::string name() const override { return "GlobalAvgPool"; }
};

}  // namespace teamnet::nn
