#include "nn/mlp.hpp"

#include <sstream>

namespace teamnet::nn {

MlpNet::MlpNet(const MlpConfig& config, Rng& rng) : config_(config) {
  TEAMNET_CHECK_MSG(config.depth >= 1, "MLP depth must be >= 1");
  std::int64_t in = config.in_features;
  for (std::int64_t layer = 0; layer + 1 < config.depth; ++layer) {
    linears_.push_back(&emplace<Linear>(in, config.hidden, rng));
    emplace<ReLU>();
    in = config.hidden;
  }
  linears_.push_back(&emplace<Linear>(in, config.num_classes, rng));
}

std::string MlpNet::name() const {
  std::ostringstream os;
  os << "MLP-" << config_.depth;
  return os.str();
}

}  // namespace teamnet::nn
