#include "nn/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "common/raw_bytes.hpp"
#include "nn/serialize.hpp"

namespace teamnet::nn {

namespace {

constexpr char kMagic[4] = {'T', 'N', 'Q', '1'};

}  // namespace

QuantizedTensor quantize(const Tensor& t) {
  TEAMNET_CHECK(t.defined() && t.numel() > 0);
  QuantizedTensor q;
  q.shape = t.shape();
  float lo = t[0], hi = t[0];
  for (float v : t.values()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  q.min = lo;
  q.scale = (hi - lo) / 255.0f;
  q.data.resize(static_cast<std::size_t>(t.numel()));
  if (q.scale <= 0.0f) {
    q.scale = 0.0f;  // constant tensor: all zeros decode to `min`
    return q;
  }
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    const float normalized = (t[i] - lo) / q.scale;
    q.data[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
        std::clamp(std::lround(normalized), 0L, 255L));
  }
  return q;
}

Tensor dequantize(const QuantizedTensor& q) {
  Tensor t(q.shape);
  TEAMNET_CHECK(static_cast<std::int64_t>(q.data.size()) == t.numel());
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = q.min + q.scale * static_cast<float>(q.data[static_cast<std::size_t>(i)]);
  }
  return t;
}

std::string serialize_parameters_quantized(Module& module) {
  const std::vector<Tensor> tensors = snapshot_parameters(module);
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  write_raw(out, static_cast<std::uint64_t>(tensors.size()));
  for (const Tensor& t : tensors) {
    const QuantizedTensor q = quantize(t);
    write_raw(out, checked_narrow<std::uint32_t>(q.shape.size()));
    for (std::int64_t d : q.shape) write_raw(out, d);
    write_raw(out, q.min);
    write_raw(out, q.scale);
    write_raw_array(out, q.data.data(), q.data.size());
  }
  return out;
}

std::vector<Tensor> dequantize_snapshot(const std::string& bytes) {
  std::size_t offset = 0;
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw SerializationError("bad magic — not a quantized TeamNet snapshot");
  }
  offset += sizeof(kMagic);
  const auto count = read_raw<std::uint64_t>(bytes, offset);
  if (count > (1u << 20)) throw SerializationError("implausible tensor count");

  std::vector<Tensor> tensors;
  tensors.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    QuantizedTensor q;
    const auto rank = read_raw<std::uint32_t>(bytes, offset);
    if (rank > 8) throw SerializationError("implausible tensor rank");
    q.shape.resize(rank);
    for (auto& d : q.shape) {
      d = read_raw<std::int64_t>(bytes, offset);
      if (d < 0 || d > (1 << 28)) throw SerializationError("implausible dim");
    }
    // checked_decode_numel rejects dim products that overflow int64 (UB in
    // shape_numel) or promise more data than any TeamNet model ships,
    // before the resize below allocates for them.
    q.data.resize(static_cast<std::size_t>(checked_decode_numel(q.shape)));
    q.min = read_raw<float>(bytes, offset);
    q.scale = read_raw<float>(bytes, offset);
    read_raw_array(bytes, offset, q.data.data(), q.data.size());
    tensors.push_back(dequantize(q));
  }
  return tensors;
}

void deserialize_parameters_quantized(const std::string& bytes, Module& module) {
  restore_parameters(module, dequantize_snapshot(bytes));
}

}  // namespace teamnet::nn
