// Collaborative inference over REAL TCP sockets — the deployment the paper
// ran between Jetson boards over WiFi, here between threads over loopback.
// One master and K-1 workers each host one trained expert; every query
// follows Figure 1: broadcast -> parallel inference -> gather -> select.
//
//   ./build/examples/collaborative_sockets
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/teamnet.hpp"
#include "data/synthetic_mnist.hpp"
#include "net/collab.hpp"
#include "net/tcp.hpp"
#include "nn/mlp.hpp"

using namespace teamnet;

int main() {
  constexpr int kExperts = 3;

  // Train a 3-expert team on synthetic MNIST (small + fast).
  data::MnistConfig data_cfg;
  data_cfg.num_samples = 1500;
  data::Dataset dataset = data::make_synthetic_mnist(data_cfg);
  auto [test, train] = dataset.split(0.2);

  core::TeamNetConfig cfg;
  cfg.num_experts = kExperts;
  cfg.epochs = 4;
  core::TeamNetTrainer trainer(cfg, [](int, Rng& rng) -> nn::ModulePtr {
    nn::MlpConfig mlp;
    mlp.depth = 3;
    mlp.hidden = 64;
    return std::make_unique<nn::MlpNet>(mlp, rng);
  });
  std::printf("training %d experts...\n", kExperts);
  core::TeamNetEnsemble ensemble = trainer.train(train);

  // Each worker listens on its own loopback port and serves its expert.
  std::vector<std::unique_ptr<net::TcpListener>> listeners;
  std::vector<std::thread> workers;
  for (int i = 1; i < kExperts; ++i) {
    listeners.push_back(std::make_unique<net::TcpListener>(0));
    std::printf("worker %d serving expert %d on 127.0.0.1:%u\n", i, i + 1,
                listeners.back()->port());
  }
  for (int i = 1; i < kExperts; ++i) {
    net::TcpListener* listener = listeners[static_cast<std::size_t>(i - 1)].get();
    nn::Module* expert = &ensemble.expert(i);
    workers.emplace_back([listener, expert] {
      auto channel = listener->accept();
      net::CollaborativeWorker worker(*expert, *channel);
      worker.serve();  // until Shutdown
    });
  }

  // The master dials every worker and runs the protocol.
  std::vector<net::ChannelPtr> channels;
  std::vector<net::Channel*> channel_ptrs;
  for (int i = 1; i < kExperts; ++i) {
    channels.push_back(net::tcp_connect(
        "127.0.0.1", listeners[static_cast<std::size_t>(i - 1)]->port()));
    channel_ptrs.push_back(channels.back().get());
  }
  net::CollaborativeMaster master(ensemble.expert(0), channel_ptrs);

  // Serve queries one at a time (the paper's per-inference measurement).
  const int queries = 100;
  std::size_t correct = 0;
  std::vector<int> wins(kExperts, 0);
  const auto t0 = std::chrono::steady_clock::now();
  for (int q = 0; q < queries; ++q) {
    const int row = q % static_cast<int>(test.size());
    Tensor x = test.images.reshape({test.size(), -1});
    Tensor query({1, x.dim(1)});
    std::copy(x.data() + row * x.dim(1), x.data() + (row + 1) * x.dim(1),
              query.data());
    auto result = master.infer(query);
    ++wins[static_cast<std::size_t>(result.chosen[0])];
    if (result.predictions[0] == test.labels[static_cast<std::size_t>(row)]) {
      ++correct;
    }
  }
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

  std::printf("\n%d queries over real TCP sockets:\n", queries);
  std::printf("  accuracy        : %.1f%%\n", 100.0 * correct / queries);
  std::printf("  mean latency    : %.3f ms (loopback, wall clock)\n",
              1e3 * elapsed / queries);
  for (int i = 0; i < kExperts; ++i) {
    std::printf("  expert %d wins   : %d\n", i + 1, wins[static_cast<std::size_t>(i)]);
  }

  master.shutdown();
  for (auto& w : workers) w.join();
  std::printf("workers shut down cleanly.\n");
  return 0;
}
