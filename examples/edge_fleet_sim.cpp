// Edge-fleet what-if: should a fleet of battery-powered smart cameras run
// one big model per device, or form a TeamNet federation? This example
// sizes the decision with the virtual-time simulator across device classes
// (Raspberry Pi, Jetson CPU, Jetson GPU) — the scenario the paper's
// introduction motivates.
//
//   ./build/examples/edge_fleet_sim
#include <cstdio>

#include "common/table.hpp"
#include "core/teamnet.hpp"
#include "data/synthetic_mnist.hpp"
#include "nn/mlp.hpp"
#include "sim/scenario.hpp"

using namespace teamnet;

int main() {
  data::MnistConfig data_cfg;
  data_cfg.num_samples = 1500;
  data::Dataset dataset = data::make_synthetic_mnist(data_cfg);
  auto [test, train] = dataset.split(0.2);

  // Realistic widths so the compute/WiFi trade-off is visible; training is
  // kept short — the latency verdict depends only on the architectures.
  Rng rng(7);
  nn::MlpConfig big;
  big.depth = 8;
  big.hidden = 512;
  nn::MlpNet baseline(big, rng);
  baseline.set_training(false);

  core::TeamNetConfig cfg;
  cfg.num_experts = 2;
  cfg.epochs = 3;
  core::TeamNetTrainer trainer(cfg, [](int, Rng& r) -> nn::ModulePtr {
    nn::MlpConfig mlp;
    mlp.depth = 4;
    mlp.hidden = 512;
    return std::make_unique<nn::MlpNet>(mlp, r);
  });
  std::printf("training a 2-expert team (this sizes accuracy only)...\n");
  core::TeamNetEnsemble ensemble = trainer.train(train);
  std::vector<nn::Module*> experts = {&ensemble.expert(0), &ensemble.expert(1)};

  Table table({"device", "baseline ms", "teamnet ms", "verdict",
               "teamnet CPU%", "baseline CPU%"});
  for (const auto& device : {sim::raspberry_pi_3b(), sim::jetson_tx2_cpu(),
                             sim::jetson_tx2_gpu()}) {
    sim::ScenarioConfig scenario;
    scenario.device = device;
    scenario.link = sim::socket_link();
    scenario.num_queries = 30;
    auto base = sim::run_baseline(baseline, test, scenario);
    auto team = sim::run_teamnet(experts, test, scenario);
    table.add_row({device.name, Table::num(base.latency_ms, 2),
                   Table::num(team.latency_ms, 2),
                   team.latency_ms < base.latency_ms ? "federate" : "go solo",
                   Table::num(team.usage.cpu_pct, 1),
                   Table::num(base.usage.cpu_pct, 1)});
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf("\nreading: on compute-bound devices the federation pays one\n"
              "WiFi round trip to halve per-node compute — a win. On a GPU\n"
              "the same round trip dwarfs the model's run time, so a single\n"
              "node is faster (the paper's Table I(b) observation).\n");
  std::printf("\nTeamNet test accuracy: %.1f%%\n",
              100.0 * ensemble.evaluate_accuracy(test));
  return 0;
}
