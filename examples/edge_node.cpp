// edge_node — a deployable TeamNet node. The same binary runs as:
//
//   trainer : train K experts on the synthetic dataset and write
//             checkpoints that workers/masters can load
//   worker  : serve one expert over TCP
//   master  : coordinate collaborative inference across workers and
//             evaluate on the test set
//
// A complete three-terminal session (here runnable against localhost):
//
//   ./edge_node train  --experts 2 --out /tmp/team            # once
//   ./edge_node worker --listen 7001 --weights /tmp/team/expert1.tnet
//   ./edge_node master --workers 127.0.0.1:7001 --weights /tmp/team/expert0.tnet
//
// The demo subcommand runs all three roles in one process:
//
//   ./edge_node demo
//
// Every subcommand accepts --trace PATH (Chrome trace-event JSON of the
// run, wall-clock timestamps) and --metrics PATH (protocol counter
// snapshot); see DESIGN.md §10.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/teamnet.hpp"
#include "data/synthetic_mnist.hpp"
#include "net/collab.hpp"
#include "net/fault.hpp"
#include "net/tcp.hpp"
#include "nn/mlp.hpp"
#include "nn/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace teamnet;

namespace {

constexpr int kDepth = 4;
constexpr int kHidden = 64;

/// Wall-clock TimeSource for real-TCP runs: seconds since process start on
/// the steady clock (the time-source rule — never mix wall and virtual
/// time in one trace).
obs::TimeSource steady_seconds() {
  static const auto t0 = std::chrono::steady_clock::now();
  const auto epoch = t0;  // one shared epoch; copy avoids capturing a static
  return [epoch] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch)
        .count();
  };
}

nn::MlpConfig expert_config() {
  nn::MlpConfig cfg;
  cfg.depth = kDepth;
  cfg.hidden = kHidden;
  return cfg;
}

data::Dataset test_set() {
  data::MnistConfig cfg;
  cfg.num_samples = 600;
  cfg.seed = 77;  // disjoint from the training seed below
  return data::make_synthetic_mnist(cfg);
}

int cmd_train(int experts, const std::string& out_dir) {
  data::MnistConfig data_cfg;
  data_cfg.num_samples = 2000;
  data::Dataset train = data::make_synthetic_mnist(data_cfg);

  core::TeamNetConfig cfg;
  cfg.num_experts = experts;
  cfg.epochs = 5;
  core::TeamNetTrainer trainer(cfg, [](int, Rng& rng) -> nn::ModulePtr {
    return std::make_unique<nn::MlpNet>(expert_config(), rng);
  });
  std::printf("training %d experts...\n", experts);
  core::TeamNetEnsemble ensemble = trainer.train(train);
  for (int i = 0; i < experts; ++i) {
    const std::string path = out_dir + "/expert" + std::to_string(i) + ".tnet";
    nn::save_module(path, ensemble.expert(i));
    std::printf("wrote %s\n", path.c_str());
  }
  std::printf("ensemble accuracy on a fresh test draw: %.1f%%\n",
              100.0 * ensemble.evaluate_accuracy(test_set()));
  return 0;
}

int cmd_worker(std::uint16_t port, const std::string& weights) {
  Rng rng(1);
  nn::MlpNet expert(expert_config(), rng);
  nn::load_module(weights, expert);
  net::TcpListener listener(port);
  std::printf("worker: serving %s on 127.0.0.1:%u\n", weights.c_str(),
              listener.port());
  auto channel = listener.accept();
  net::CollaborativeWorker worker(expert, *channel);
  worker.serve();
  std::printf("worker: shutdown after %lld requests\n",
              static_cast<long long>(worker.requests_served()));
  return 0;
}

int cmd_master(const std::vector<std::string>& workers,
               const std::string& weights, std::uint64_t chaos_seed,
               double chaos_drop) {
  Rng rng(2);
  nn::MlpNet expert(expert_config(), rng);
  nn::load_module(weights, expert);

  std::vector<net::ChannelPtr> channels;
  std::vector<net::Channel*> ptrs;
  Rng chaos_rng(chaos_seed);
  for (const auto& address : workers) {
    const auto colon = address.find(':');
    TEAMNET_CHECK_MSG(colon != std::string::npos, "worker must be host:port");
    auto channel = net::tcp_connect(
        address.substr(0, colon),
        static_cast<std::uint16_t>(std::stoi(address.substr(colon + 1))));
    if (chaos_seed != 0) {
      // Chaos mode: inject seeded faults on this link so the deadline +
      // probation machinery can be exercised against real TCP workers.
      net::FaultProfile profile;
      profile.seed = chaos_rng.fork(channels.size()).engine()();
      profile.drop_prob = chaos_drop;
      profile.duplicate_prob = chaos_drop / 2;
      channel = net::make_faulty_channel(std::move(channel), profile);
    }
    channels.push_back(std::move(channel));
    ptrs.push_back(channels.back().get());
    std::printf("master: connected to %s%s\n", address.c_str(),
                chaos_seed != 0 ? " (chaos)" : "");
  }

  net::CollaborativeMaster master(expert, ptrs);
  if (chaos_seed != 0) {
    master.set_worker_timeout(1.0);
    master.set_probe_interval(2);
  }
  data::Dataset test = test_set();
  std::size_t correct = 0;
  for (std::int64_t r = 0; r < test.size(); ++r) {
    Tensor query({1, test.images.dim(1)});
    std::copy(test.images.data() + r * test.images.dim(1),
              test.images.data() + (r + 1) * test.images.dim(1), query.data());
    auto result = master.infer(query);
    if (result.predictions[0] == test.labels[static_cast<std::size_t>(r)]) {
      ++correct;
    }
  }
  std::printf("master: collaborative accuracy over %lld queries: %.1f%%\n",
              static_cast<long long>(test.size()),
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(test.size()));
  if (chaos_seed != 0) {
    std::printf("master: chaos stats: %d failed, %lld stale discarded, "
                "%lld rejoins\n",
                master.failed_workers(),
                static_cast<long long>(master.stale_replies_discarded()),
                static_cast<long long>(master.rejoins()));
  }
  master.shutdown();
  return 0;
}

int cmd_demo() {
  const std::string dir = "/tmp/teamnet_edge_demo";
  std::filesystem::create_directories(dir);
  if (cmd_train(2, dir) != 0) return 1;

  net::TcpListener listener(0);
  const std::uint16_t port = listener.port();
  std::thread worker([&listener, dir] {
    // Same steady-clock epoch as the master track, so the demo trace shows
    // both roles on one consistent timeline.
    obs::TraceTrack track(1, steady_seconds(), "worker");
    Rng rng(1);
    nn::MlpNet expert(expert_config(), rng);
    nn::load_module(dir + "/expert1.tnet", expert);
    auto channel = listener.accept();
    net::CollaborativeWorker w(expert, *channel);
    w.serve();
  });
  const int rc = cmd_master({"127.0.0.1:" + std::to_string(port)},
                            dir + "/expert0.tnet", /*chaos_seed=*/0,
                            /*chaos_drop=*/0.0);
  worker.join();
  return rc;
}

void usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  edge_node train  --experts K --out DIR\n"
               "  edge_node worker --listen PORT --weights FILE\n"
               "  edge_node master --workers host:port[,host:port...] "
               "--weights FILE\n"
               "                   [--chaos-seed N --chaos-drop P]\n"
               "  edge_node demo\n"
               "\n"
               "--chaos-seed N (N != 0) wraps every worker link in a seeded\n"
               "fault injector (drop rate P, default 0.05) and enables the\n"
               "gather deadline + probation machinery.\n"
               "\n"
               "Any subcommand also takes --trace PATH (Chrome trace-event\n"
               "JSON, open in Perfetto) and --metrics PATH (counter\n"
               "snapshot).\n");
}

std::string flag_value(int argc, char** argv, const std::string& flag,
                       const std::string& fallback = "") {
  for (int i = 2; i + 1 < argc; ++i) {
    if (flag == argv[i]) return argv[i + 1];
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  try {
    const std::string trace_path = flag_value(argc, argv, "--trace");
    const std::string metrics_path = flag_value(argc, argv, "--metrics");
    if (!trace_path.empty()) obs::require_writable_parent(trace_path, "--trace");
    if (!metrics_path.empty()) {
      obs::require_writable_parent(metrics_path, "--metrics");
    }
    if (!trace_path.empty()) obs::Tracer::instance().start();
    // The main thread plays one role per subcommand; real TCP means the
    // wall clock is the track's TimeSource.
    obs::TraceTrack track(0, steady_seconds(), command);
    int rc = 2;
    bool handled = true;
    if (command == "train") {
      const std::string out = flag_value(argc, argv, "--out", ".");
      std::filesystem::create_directories(out);
      rc = cmd_train(std::stoi(flag_value(argc, argv, "--experts", "2")), out);
    } else if (command == "worker") {
      rc = cmd_worker(
          static_cast<std::uint16_t>(
              std::stoi(flag_value(argc, argv, "--listen", "0"))),
          flag_value(argc, argv, "--weights"));
    } else if (command == "master") {
      std::vector<std::string> workers;
      std::string list = flag_value(argc, argv, "--workers");
      std::size_t pos = 0;
      while (pos != std::string::npos && !list.empty()) {
        const std::size_t comma = list.find(',', pos);
        workers.push_back(list.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos));
        pos = comma == std::string::npos ? comma : comma + 1;
      }
      TEAMNET_CHECK_MSG(!workers.empty(), "--workers required");
      rc = cmd_master(
          workers, flag_value(argc, argv, "--weights"),
          std::stoull(flag_value(argc, argv, "--chaos-seed", "0")),
          std::stod(flag_value(argc, argv, "--chaos-drop", "0.05")));
    } else if (command == "demo") {
      rc = cmd_demo();
    } else {
      handled = false;
    }
    if (handled) {
      if (!trace_path.empty()) {
        obs::Tracer::instance().write(trace_path);
        std::printf("wrote trace to %s\n", trace_path.c_str());
      }
      if (!metrics_path.empty()) {
        obs::write_metrics_json(metrics_path);
        std::printf("wrote metrics snapshot to %s\n", metrics_path.c_str());
      }
      return rc;
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
