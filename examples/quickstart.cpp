// Quickstart: train a TeamNet federation of two experts on the synthetic
// MNIST dataset, inspect the learned partition, run collaborative
// inference, and round-trip the experts through serialization.
//
//   ./build/examples/quickstart
#include <cstdio>
#include <sstream>

#include "core/teamnet.hpp"
#include "data/synthetic_mnist.hpp"
#include "nn/mlp.hpp"
#include "nn/serialize.hpp"

using namespace teamnet;

int main() {
  // 1. Data: a procedural MNIST stand-in (10 digit classes, 28x28).
  data::MnistConfig data_cfg;
  data_cfg.num_samples = 2000;
  data::Dataset dataset = data::make_synthetic_mnist(data_cfg);
  auto [test, train] = dataset.split(0.2);
  std::printf("dataset: %lld train / %lld test samples, %d classes\n",
              static_cast<long long>(train.size()),
              static_cast<long long>(test.size()), train.num_classes);

  // 2. Configure TeamNet: K experts, each a downsized MLP. The trainer owns
  //    Algorithm 1 (entropy probe -> dynamic gate -> per-expert SGD step).
  core::TeamNetConfig cfg;
  cfg.num_experts = 2;
  cfg.epochs = 5;
  cfg.batch_size = 64;

  core::ExpertFactory make_expert = [](int index, Rng& rng) -> nn::ModulePtr {
    nn::MlpConfig mlp;
    mlp.depth = 4;    // the paper's 2xMLP-4 configuration
    mlp.hidden = 64;
    std::printf("  building expert %d: MLP-%lld, hidden %lld\n", index + 1,
                static_cast<long long>(mlp.depth),
                static_cast<long long>(mlp.hidden));
    return std::make_unique<nn::MlpNet>(mlp, rng);
  };

  core::TeamNetTrainer trainer(cfg, make_expert);
  std::printf("training %d experts for %d epochs...\n", cfg.num_experts,
              cfg.epochs);
  core::TeamNetEnsemble ensemble = trainer.train(train);

  // 3. Convergence telemetry: the share of each batch the gate assigned to
  //    each expert should settle near 1/K (paper Figure 6).
  const auto& tel = trainer.telemetry();
  const auto final_gamma = tel.smoothed_gamma(tel.iterations() - 1,
                                              tel.iterations() / 4);
  std::printf("final smoothed partition: [%.2f, %.2f] (set point 0.50)\n",
              final_gamma[0], final_gamma[1]);

  // 4. Collaborative inference: every expert predicts; the least-uncertain
  //    one wins (the argmin-entropy gate of Figure 4).
  const double acc = ensemble.evaluate_accuracy(test);
  std::printf("TeamNet test accuracy: %.1f%%\n", 100.0 * acc);

  auto result = ensemble.infer(test.images);
  int wins0 = 0;
  for (int w : result.chosen) wins0 += (w == 0);
  std::printf("expert 1 answered %.0f%% of queries, expert 2 the rest\n",
              100.0 * wins0 / static_cast<double>(result.chosen.size()));

  // 5. Ship an expert to an edge device: serialize + restore its weights.
  std::string wire = nn::serialize_parameters(ensemble.expert(0));
  std::printf("expert 1 weights serialize to %zu bytes\n", wire.size());
  Rng rng(99);
  nn::MlpConfig mlp;
  mlp.depth = 4;
  mlp.hidden = 64;
  nn::MlpNet restored(mlp, rng);
  nn::deserialize_parameters(wire, restored);
  restored.set_training(false);
  Tensor a = ensemble.expert(0).predict(test.images);
  Tensor b = restored.predict(test.images);
  std::printf("restored expert matches original: %s\n",
              a.allclose(b) ? "yes" : "NO");
  return 0;
}
