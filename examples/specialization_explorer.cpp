// Specialization explorer: trains a 2-expert TeamNet on the synthetic
// CIFAR dataset and visualizes who-knows-what — the per-class "most
// certain expert" map of the paper's Figure 9, plus ASCII renderings of
// sample images so the dataset's machine/animal structure is visible.
//
//   ./build/examples/specialization_explorer
#include <cstdio>

#include "core/entropy.hpp"
#include "core/teamnet.hpp"
#include "data/synthetic_cifar.hpp"
#include "nn/shake_shake.hpp"
#include "tensor/ops.hpp"

using namespace teamnet;

namespace {

/// Coarse ASCII rendering of a [3,S,S] image (luminance ramp).
void render_ascii(const Tensor& image) {
  const char* ramp = " .:-=+*#%@";
  const std::int64_t s = image.dim(1);
  for (std::int64_t y = 0; y < s; ++y) {
    for (std::int64_t x = 0; x < s; ++x) {
      const float lum = 0.30f * image.at(0, y, x) + 0.59f * image.at(1, y, x) +
                        0.11f * image.at(2, y, x);
      const int idx = std::min(9, static_cast<int>(lum * 10.0f));
      std::printf("%c%c", ramp[idx], ramp[idx]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  data::CifarConfig data_cfg;
  data_cfg.num_samples = 1000;
  data_cfg.image_size = 16;
  data::Dataset dataset = data::make_synthetic_cifar(data_cfg);
  auto [test, train] = dataset.split(0.25);

  std::printf("two sample images from the synthetic CIFAR stand-in:\n\n");
  for (std::int64_t i = 0; i < test.size() && i < 200; ++i) {
    const int cls = test.labels[static_cast<std::size_t>(i)];
    if (cls == 9 || cls == 3) {  // one machine (truck), one animal (cat)
      std::printf("class: %s (%s)\n", data::cifar_class_name(cls).c_str(),
                  data::is_machine_class(cls) ? "machine" : "animal");
      render_ascii(ops::take_rows(test.images, {static_cast<int>(i)})
                       .reshape({3, data_cfg.image_size, data_cfg.image_size}));
      std::printf("\n");
      if (cls == 9) break;
    }
  }

  core::TeamNetConfig cfg;
  cfg.num_experts = 2;
  cfg.epochs = 3;
  cfg.batch_size = 32;
  cfg.sgd.lr = 0.03f;
  core::TeamNetTrainer trainer(cfg, [&](int, Rng& rng) -> nn::ModulePtr {
    nn::ShakeShakeConfig ss;
    ss.depth = 8;
    ss.base_channels = 6;
    ss.image_size = data_cfg.image_size;
    return std::make_unique<nn::ShakeShakeNet>(ss, rng);
  });
  std::printf("training 2 Shake-Shake experts (a few minutes of CPU)...\n");
  core::TeamNetEnsemble ensemble = trainer.train(train);
  std::printf("ensemble accuracy: %.1f%%\n\n",
              100.0 * ensemble.evaluate_accuracy(test));

  // Figure-9-style map: which expert is least uncertain per class?
  auto result = ensemble.infer(test.images);
  std::vector<std::array<int, 2>> wins(10, {0, 0});
  std::vector<int> totals(10, 0);
  for (std::int64_t r = 0; r < test.size(); ++r) {
    const int cls = test.labels[static_cast<std::size_t>(r)];
    ++wins[static_cast<std::size_t>(cls)]
          [static_cast<std::size_t>(result.chosen[static_cast<std::size_t>(r)])];
    ++totals[static_cast<std::size_t>(cls)];
  }
  std::printf("%-12s %-8s %-9s %-9s\n", "class", "group", "expert 1",
              "expert 2");
  for (int cls : {0, 1, 8, 9, 2, 3, 4, 5, 6, 7}) {
    const double w0 = static_cast<double>(wins[static_cast<std::size_t>(cls)][0]) /
                      std::max(1, totals[static_cast<std::size_t>(cls)]);
    std::printf("%-12s %-8s %8.0f%% %8.0f%%\n",
                data::cifar_class_name(cls).c_str(),
                data::is_machine_class(cls) ? "machine" : "animal", 100.0 * w0,
                100.0 * (1.0 - w0));
  }
  std::printf("\nexpect one expert to dominate the machine rows and the other\n"
              "the animal rows — knowledge partitioned along the dataset's\n"
              "semantic super-clusters, with no explicit labels for them.\n");
  return 0;
}
