# Convenience targets for the whole-program static analyzer
# (tools/analyze.py, DESIGN.md §12). The default lexical frontend needs
# only python3; the optional clang frontend additionally needs the
# python3-clang bindings plus libclang, and reads the
# compile_commands.json this project always exports
# (CMAKE_EXPORT_COMPILE_COMMANDS is ON in the top-level CMakeLists).
#
#   cmake --build build --target analyze                 # gate: 0 new findings
#   cmake --build build --target analyze-write-baseline  # intentional refresh
#
# The same checks run in ctest as analyze.self_test / analyze.repo_clean /
# analyze.baseline_current (tests/CMakeLists.txt) and as CI's `analyze`
# job, so these targets are for local iteration, not the only gate.
find_package(Python3 COMPONENTS Interpreter QUIET)

if(Python3_FOUND)
  add_custom_target(analyze
    COMMAND ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/analyze.py
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "analyze.py: lock-order / block-under-lock / hot-alloc audit"
    VERBATIM)
  add_custom_target(analyze-write-baseline
    COMMAND ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/analyze.py
            --write-baseline
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "analyze.py: refreshing tools/analyze_baseline.json"
    VERBATIM)
endif()
