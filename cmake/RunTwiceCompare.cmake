# Byte-identity gate for a sweep bench: run BIN twice with identical
# arguments and require the two --json files to compare equal byte for
# byte. This is the determinism contract of DESIGN.md §14 — under the
# discrete-event scheduler a seeded run's machine-readable output is a
# pure function of the seed, so even one flipped bit means wall-clock or
# iteration-order nondeterminism leaked into the stats plane.
#
# Usage:
#   cmake -DBIN=<sweep binary> -DOUT_DIR=<scratch dir>
#         [-DEXTRA_ARGS=<;-list appended to both runs>]
#         -P RunTwiceCompare.cmake
if(NOT DEFINED BIN OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "RunTwiceCompare.cmake needs -DBIN=... and -DOUT_DIR=...")
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")
foreach(run a b)
  execute_process(
    COMMAND "${BIN}" --quick --json "${OUT_DIR}/run_${run}.json" ${EXTRA_ARGS}
    RESULT_VARIABLE status
    OUTPUT_QUIET)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "${BIN} run '${run}' exited with ${status}")
  endif()
endforeach()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files
          "${OUT_DIR}/run_a.json" "${OUT_DIR}/run_b.json"
  RESULT_VARIABLE identical)
if(NOT identical EQUAL 0)
  message(FATAL_ERROR
          "--json output differs between same-seed runs: "
          "${OUT_DIR}/run_a.json vs ${OUT_DIR}/run_b.json")
endif()
message(STATUS "byte-identical: ${OUT_DIR}/run_a.json == run_b.json")
