# Byte-identity gate for a sweep bench: run BIN twice with identical
# arguments and require every machine-readable output file to compare
# equal byte for byte. This is the determinism contract of DESIGN.md §14 —
# under the discrete-event scheduler a seeded run's machine-readable
# output is a pure function of the seed, so even one flipped bit means
# wall-clock or iteration-order nondeterminism leaked into the stats
# plane.
#
# Usage:
#   cmake -DBIN=<sweep binary> -DOUT_DIR=<scratch dir>
#         [-DOUT_FLAGS=<;-list of output flags, default --json>]
#         [-DEXTRA_ARGS=<;-list appended to both runs>]
#         -P RunTwiceCompare.cmake
#
# Each flag F in OUT_FLAGS contributes "F ${OUT_DIR}/run_<run>.<stem>.json"
# to both invocations (stem = flag without dashes), and the resulting pair
# must be identical — so one gate covers --json and --breakdown at once.
if(NOT DEFINED BIN OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "RunTwiceCompare.cmake needs -DBIN=... and -DOUT_DIR=...")
endif()
if(NOT DEFINED OUT_FLAGS)
  set(OUT_FLAGS "--json")
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(stems)
foreach(run a b)
  set(args)
  foreach(flag ${OUT_FLAGS})
    string(REPLACE "-" "" stem "${flag}")
    list(APPEND stems ${stem})
    list(APPEND args ${flag} "${OUT_DIR}/run_${run}.${stem}.json")
  endforeach()
  execute_process(
    COMMAND "${BIN}" --quick ${args} ${EXTRA_ARGS}
    RESULT_VARIABLE status
    OUTPUT_QUIET)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "${BIN} run '${run}' exited with ${status}")
  endif()
endforeach()
list(REMOVE_DUPLICATES stems)

foreach(stem ${stems})
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${OUT_DIR}/run_a.${stem}.json" "${OUT_DIR}/run_b.${stem}.json"
    RESULT_VARIABLE identical)
  if(NOT identical EQUAL 0)
    message(FATAL_ERROR
            "--${stem} output differs between same-seed runs: "
            "${OUT_DIR}/run_a.${stem}.json vs run_b.${stem}.json")
  endif()
  message(STATUS
          "byte-identical: ${OUT_DIR}/run_a.${stem}.json == run_b.${stem}.json")
endforeach()
