# Warning and sanitizer presets shared by every TeamNet target.
#
# Usage: include() once at the top level, then call
# teamnet_apply_build_flags(<target>) on every library and executable.
# Sanitizer instrumentation is attached PUBLIC so it propagates to anything
# that links an instrumented library — mixing instrumented and plain TUs in
# one process is what breaks sanitizer builds, so the whole tree opts in
# together.
#
#   TEAMNET_SANITIZE = off | address | undefined | thread | asan+ubsan
#   TEAMNET_WERROR   = ON to promote warnings to errors (the CI default)

set(TEAMNET_SANITIZE "off" CACHE STRING
    "Sanitizer preset: off, address, undefined, thread, or asan+ubsan")
set_property(CACHE TEAMNET_SANITIZE PROPERTY STRINGS
             off address undefined thread asan+ubsan)
option(TEAMNET_WERROR "Treat compiler warnings as errors" OFF)

if(TEAMNET_SANITIZE STREQUAL "off")
  set(TEAMNET_SANITIZE_FLAGS "")
elseif(TEAMNET_SANITIZE STREQUAL "address")
  set(TEAMNET_SANITIZE_FLAGS -fsanitize=address -fno-omit-frame-pointer)
elseif(TEAMNET_SANITIZE STREQUAL "undefined")
  set(TEAMNET_SANITIZE_FLAGS -fsanitize=undefined -fno-sanitize-recover=all
      -fno-omit-frame-pointer)
elseif(TEAMNET_SANITIZE STREQUAL "asan+ubsan")
  set(TEAMNET_SANITIZE_FLAGS -fsanitize=address,undefined
      -fno-sanitize-recover=all -fno-omit-frame-pointer)
elseif(TEAMNET_SANITIZE STREQUAL "thread")
  set(TEAMNET_SANITIZE_FLAGS -fsanitize=thread -fno-omit-frame-pointer)
else()
  message(FATAL_ERROR
          "TEAMNET_SANITIZE=${TEAMNET_SANITIZE} is not a known preset "
          "(expected off, address, undefined, thread, or asan+ubsan)")
endif()

if(NOT TEAMNET_SANITIZE STREQUAL "off")
  message(STATUS "TeamNet sanitizer preset: ${TEAMNET_SANITIZE}")
endif()

function(teamnet_apply_build_flags target)
  target_compile_options(${target} PRIVATE -Wall -Wextra)
  if(TEAMNET_WERROR)
    target_compile_options(${target} PRIVATE -Werror)
  endif()
  if(TEAMNET_SANITIZE_FLAGS)
    target_compile_options(${target} PUBLIC ${TEAMNET_SANITIZE_FLAGS})
    target_link_options(${target} PUBLIC ${TEAMNET_SANITIZE_FLAGS})
  endif()
endfunction()
