# Warning and sanitizer presets shared by every TeamNet target.
#
# Usage: include() once at the top level, then call
# teamnet_apply_build_flags(<target>) on every library and executable.
# Sanitizer instrumentation is attached PUBLIC so it propagates to anything
# that links an instrumented library — mixing instrumented and plain TUs in
# one process is what breaks sanitizer builds, so the whole tree opts in
# together.
#
#   TEAMNET_SANITIZE      = off | address | undefined | thread | asan+ubsan
#   TEAMNET_WERROR        = ON to promote warnings to errors (the CI default)
#   TEAMNET_THREAD_SAFETY = ON for clang's compile-time capability analysis
#                           (-Wthread-safety -Wthread-safety-beta -Werror);
#                           proves lock discipline on ALL paths, not just the
#                           interleavings TSan happens to execute
#   TEAMNET_FUZZ          = ON to build the libFuzzer harnesses in fuzz/
#                           (clang only; the corpus-replay ctest cases build
#                           with every compiler regardless)

set(TEAMNET_SANITIZE "off" CACHE STRING
    "Sanitizer preset: off, address, undefined, thread, or asan+ubsan")
set_property(CACHE TEAMNET_SANITIZE PROPERTY STRINGS
             off address undefined thread asan+ubsan)
option(TEAMNET_WERROR "Treat compiler warnings as errors" OFF)
option(TEAMNET_THREAD_SAFETY
       "Enable clang -Wthread-safety capability analysis as errors" OFF)
option(TEAMNET_FUZZ "Build libFuzzer harnesses (requires clang)" OFF)

if(TEAMNET_THREAD_SAFETY AND NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  message(FATAL_ERROR
          "TEAMNET_THREAD_SAFETY=ON requires clang (the capability analysis "
          "is a clang extension); configure with -DCMAKE_CXX_COMPILER=clang++")
endif()
if(TEAMNET_FUZZ AND NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  message(FATAL_ERROR
          "TEAMNET_FUZZ=ON requires clang (libFuzzer ships with clang); "
          "configure with -DCMAKE_CXX_COMPILER=clang++")
endif()

if(TEAMNET_SANITIZE STREQUAL "off")
  set(TEAMNET_SANITIZE_FLAGS "")
elseif(TEAMNET_SANITIZE STREQUAL "address")
  set(TEAMNET_SANITIZE_FLAGS -fsanitize=address -fno-omit-frame-pointer)
elseif(TEAMNET_SANITIZE STREQUAL "undefined")
  set(TEAMNET_SANITIZE_FLAGS -fsanitize=undefined -fno-sanitize-recover=all
      -fno-omit-frame-pointer)
elseif(TEAMNET_SANITIZE STREQUAL "asan+ubsan")
  set(TEAMNET_SANITIZE_FLAGS -fsanitize=address,undefined
      -fno-sanitize-recover=all -fno-omit-frame-pointer)
elseif(TEAMNET_SANITIZE STREQUAL "thread")
  set(TEAMNET_SANITIZE_FLAGS -fsanitize=thread -fno-omit-frame-pointer)
else()
  message(FATAL_ERROR
          "TEAMNET_SANITIZE=${TEAMNET_SANITIZE} is not a known preset "
          "(expected off, address, undefined, thread, or asan+ubsan)")
endif()

if(NOT TEAMNET_SANITIZE STREQUAL "off")
  message(STATUS "TeamNet sanitizer preset: ${TEAMNET_SANITIZE}")
endif()

function(teamnet_apply_build_flags target)
  target_compile_options(${target} PRIVATE -Wall -Wextra)
  if(TEAMNET_WERROR)
    target_compile_options(${target} PRIVATE -Werror)
  endif()
  if(TEAMNET_THREAD_SAFETY)
    # Always -Werror: a thread-safety finding is a lock-discipline bug, and
    # an advisory warning on a build nobody reads is how races ship.
    target_compile_options(${target} PRIVATE
                           -Wthread-safety -Wthread-safety-beta -Werror)
  endif()
  if(TEAMNET_SANITIZE_FLAGS)
    target_compile_options(${target} PUBLIC ${TEAMNET_SANITIZE_FLAGS})
    target_link_options(${target} PUBLIC ${TEAMNET_SANITIZE_FLAGS})
  endif()
endfunction()
